package reachlab

import (
	"bytes"
	"context"
	"slices"
	"testing"
)

// Oracle suite for the rich-query primitives: WitnessPath,
// ReachableFrom, and ReachableSetSize verified against BFS ground
// truth over seeded cyclic digraphs, across every build method, with
// and without SCC condensation, and under label budgets down to 1 —
// the same variant grid oracle_test.go runs for boolean queries.

// queryVariants is the build grid every primitive must agree across.
func queryVariants() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"tol", Options{Method: MethodTOL}},
		{"drl-basic", Options{Method: MethodDRLBasic, Workers: 2}},
		{"drl", Options{Method: MethodDRL, Workers: 2}},
		{"drl-batch", Options{Method: MethodDRLBatch, Workers: 2}},
		{"drl-shared", Options{Method: MethodDRLShared, Workers: 2}},
		{"tol-scc", Options{Method: MethodTOL, CondenseSCC: true}},
		{"drl-batch-scc", Options{Method: MethodDRLBatch, Workers: 2, CondenseSCC: true}},
		{"budget-1", Options{LabelBudget: 1}},
		{"budget-4", Options{LabelBudget: 4}},
		{"budget-2-scc", Options{LabelBudget: 2, CondenseSCC: true}},
	}
}

// bfsAllDistances computes dist[s][t] = shortest hop count (-1 when
// unreachable) — the path-length oracle. dist[s][s] is 0.
func bfsAllDistances(g *Graph) [][]int {
	n := g.NumVertices()
	dist := make([][]int, n)
	for s := 0; s < n; s++ {
		row := make([]int, n)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue := []VertexID{VertexID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.OutNeighbors(v) {
				if row[w] == -1 {
					row[w] = row[v] + 1
					queue = append(queue, w)
				}
			}
		}
		dist[s] = row
	}
	return dist
}

// edgeSet returns the membership map of the graph's directed edges.
func edgeSet(g *Graph) map[[2]VertexID]bool {
	es := make(map[[2]VertexID]bool)
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			es[[2]VertexID{VertexID(v), w}] = true
		}
	}
	return es
}

// checkWitnessPath asserts one path answer against the oracle: a path
// exists iff the pair is reachable, endpoints match, every hop is a
// real edge, the length equals the BFS shortest distance (the guided
// BFS prunes only dead branches, so it must still find a shortest
// path), and every intermediate w satisfies the label-metamorphic
// property Reachable(s, w) && Reachable(w, t).
func checkWitnessPath(t *testing.T, idx *Index, edges map[[2]VertexID]bool, s, tt VertexID, dist int) {
	t.Helper()
	path, err := idx.WitnessPath(s, tt)
	if err != nil {
		t.Fatalf("WitnessPath(%d,%d): %v", s, tt, err)
	}
	if dist < 0 {
		if path != nil {
			t.Fatalf("WitnessPath(%d,%d) = %v for an unreachable pair", s, tt, path)
		}
		return
	}
	if len(path) != dist+1 {
		t.Fatalf("WitnessPath(%d,%d) has %d hops, BFS shortest is %d: %v", s, tt, len(path)-1, dist, path)
	}
	if path[0] != s || path[len(path)-1] != tt {
		t.Fatalf("WitnessPath(%d,%d) endpoints wrong: %v", s, tt, path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !edges[[2]VertexID{path[i], path[i+1]}] {
			t.Fatalf("WitnessPath(%d,%d) hop %d→%d is not an edge: %v", s, tt, path[i], path[i+1], path)
		}
	}
	for _, w := range path {
		if !idx.Reachable(s, w) || !idx.Reachable(w, tt) {
			t.Fatalf("WitnessPath(%d,%d) vertex %d fails Reachable(s,w)&&Reachable(w,t)", s, tt, w)
		}
	}
}

func TestRichQueriesMatchBFSOracle(t *testing.T) {
	seeds := []int64{21, 22}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		g := randomCyclicGraph(60, 200, seed)
		n := g.NumVertices()
		dist := bfsAllDistances(g)
		edges := edgeSet(g)
		all := make([]VertexID, n)
		for i := range all {
			all[i] = VertexID(i)
		}

		for _, v := range queryVariants() {
			t.Run(v.name, func(t *testing.T) {
				idx, err := Build(context.Background(), g, v.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !idx.HasGraph() {
					t.Fatal("freshly built index has no graph attached")
				}
				if v.opts.LabelBudget > 0 && v.opts.LabelBudget < 3 && !v.opts.CondenseSCC {
					// The small budgets exist to exercise the fallback; a
					// graph this dense must overflow somewhere. (Condensation
					// shrinks labels enough that small budgets may fit.)
					st := idx.Stats()
					if st.OverflowedIn+st.OverflowedOut == 0 {
						t.Fatalf("budget %d overflowed nothing — fallback untested", v.opts.LabelBudget)
					}
				}

				for s := 0; s < n; s++ {
					// Full-row sweep == per-pair oracle.
					row := idx.ReachableFrom(VertexID(s), all)
					for tt := 0; tt < n; tt++ {
						if want := dist[s][tt] >= 0; row[tt] != want {
							t.Fatalf("ReachableFrom(%d)[%d] = %v, oracle says %v", s, tt, row[tt], want)
						}
					}
					// Metamorphic: set size == popcount of the full row.
					pop := 0
					for _, ok := range row {
						if ok {
							pop++
						}
					}
					if size := idx.ReachableSetSize(VertexID(s)); size != pop {
						t.Fatalf("ReachableSetSize(%d) = %d, popcount(ReachableFrom) = %d", s, size, pop)
					}
					// Duplicate-bearing subset answers match the full row.
					sub := []VertexID{VertexID((s + 7) % n), VertexID(s), VertexID((s + 7) % n), VertexID((s*3 + 1) % n)}
					got := idx.ReachableFrom(VertexID(s), sub)
					for i, tt := range sub {
						if got[i] != row[tt] {
							t.Fatalf("ReachableFrom(%d) subset[%d]=%d disagrees with full row", s, i, tt)
						}
					}
				}

				// Witness paths over a deterministic pair sample (all n²
				// pairs × 10 variants is needless; the sample covers
				// reachable, unreachable, and s==t).
				for k := 0; k < 400; k++ {
					s := VertexID((k * 13) % n)
					tt := VertexID((k*29 + 7) % n)
					checkWitnessPath(t, idx, edges, s, tt, dist[s][tt])
				}
				if p, err := idx.WitnessPath(5, 5); err != nil || len(p) != 1 || p[0] != 5 {
					t.Fatalf("WitnessPath(5,5) = %v, %v; want [5]", p, err)
				}
			})
		}
	}
}

// TestRichQueriesStableAcrossRefreeze: rebuilding the same graph with
// the same options must reproduce every rich answer bit-for-bit —
// rows, sizes, and the witness paths themselves (the CSR fixes the
// BFS tie-break order, so even path choice is deterministic).
func TestRichQueriesStableAcrossRefreeze(t *testing.T) {
	g := randomCyclicGraph(50, 170, 23)
	n := g.NumVertices()
	all := make([]VertexID, n)
	for i := range all {
		all[i] = VertexID(i)
	}
	for _, opts := range []Options{{}, {CondenseSCC: true}, {LabelBudget: 2}} {
		a, err := Build(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < n; s++ {
			if !slices.Equal(a.ReachableFrom(VertexID(s), all), b.ReachableFrom(VertexID(s), all)) {
				t.Fatalf("ReachableFrom(%d) differs across refreeze (opts %+v)", s, opts)
			}
			if a.ReachableSetSize(VertexID(s)) != b.ReachableSetSize(VertexID(s)) {
				t.Fatalf("ReachableSetSize(%d) differs across refreeze (opts %+v)", s, opts)
			}
			pa, erra := a.WitnessPath(VertexID(s), VertexID((s*7+3)%n))
			pb, errb := b.WitnessPath(VertexID(s), VertexID((s*7+3)%n))
			if erra != nil || errb != nil || !slices.Equal(pa, pb) {
				t.Fatalf("WitnessPath(%d,·) differs across refreeze: %v/%v vs %v/%v", s, pa, erra, pb, errb)
			}
		}
	}
}

// TestWitnessPathGraphAttachment: serialization drops the graph, so a
// deserialized index refuses WitnessPath with ErrNoGraph until
// AttachGraph supplies it — and then answers exactly like the
// original. AttachGraph rejects a graph of the wrong size. The
// roundtrip also exercises the condensed compSize rebuild.
func TestWitnessPathGraphAttachment(t *testing.T) {
	g := randomCyclicGraph(40, 130, 31)
	n := g.NumVertices()
	all := make([]VertexID, n)
	for i := range all {
		all[i] = VertexID(i)
	}
	for _, opts := range []Options{{}, {CondenseSCC: true}} {
		idx, err := Build(context.Background(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.HasGraph() {
			t.Fatal("deserialized index claims a graph")
		}
		if _, err := loaded.WitnessPath(0, 1); err != ErrNoGraph {
			t.Fatalf("WitnessPath without graph: err = %v, want ErrNoGraph", err)
		}
		// Boolean sweeps need no graph and survive the roundtrip (the
		// condensed variant rebuilds compSize in ReadIndex).
		for s := 0; s < n; s += 7 {
			if !slices.Equal(loaded.ReachableFrom(VertexID(s), all), idx.ReachableFrom(VertexID(s), all)) {
				t.Fatalf("ReachableFrom(%d) differs after roundtrip", s)
			}
			if loaded.ReachableSetSize(VertexID(s)) != idx.ReachableSetSize(VertexID(s)) {
				t.Fatalf("ReachableSetSize(%d) differs after roundtrip", s)
			}
		}
		if err := loaded.AttachGraph(randomCyclicGraph(41, 130, 31)); err == nil {
			t.Fatal("AttachGraph accepted a graph with the wrong vertex count")
		}
		if err := loaded.AttachGraph(g); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 200; k++ {
			s, tt := VertexID(k%n), VertexID((k*11+2)%n)
			pa, erra := idx.WitnessPath(s, tt)
			pb, errb := loaded.WitnessPath(s, tt)
			if erra != nil || errb != nil || !slices.Equal(pa, pb) {
				t.Fatalf("WitnessPath(%d,%d) differs after attach: %v/%v vs %v/%v", s, tt, pa, erra, pb, errb)
			}
		}
	}
}

package reachlab

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/drl"
	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/netsim"
	"repro/internal/order"
	"repro/internal/pregel"
	"repro/internal/tol"
)

// Method selects the index-construction algorithm. Every method
// produces the identical TOL index; they differ only in build cost
// and in whether they run on the simulated distributed cluster.
type Method string

// The available construction methods.
const (
	// MethodTOL is the serial baseline (Algorithm 1): correct and
	// simple, but single-threaded by construction.
	MethodTOL Method = "tol"
	// MethodDRLBasic is the basic filtering-and-refinement method
	// DRL⁻ (Theorem 3) on the vertex-centric system. Slow; provided
	// for completeness and the paper's ablations.
	MethodDRLBasic Method = "drl-basic"
	// MethodDRL is the improved method (Algorithm 3) on the
	// vertex-centric system.
	MethodDRL Method = "drl"
	// MethodDRLBatch is DRL_b (Algorithm 4), the paper's best: batch
	// labeling on the vertex-centric system. The default.
	MethodDRLBatch Method = "drl-batch"
	// MethodDRLShared is the shared-memory multi-core DRL_b^M: no
	// message passing, Workers goroutines over one address space.
	MethodDRLShared Method = "drl-shared"
)

// Options configures Build.
type Options struct {
	// Method picks the algorithm (default MethodDRLBatch).
	Method Method
	// Workers is the number of computation nodes (or goroutines for
	// MethodDRLShared). Default 4; MethodTOL ignores it.
	Workers int
	// BatchSize and BatchFactor are DRL_b's b and k (defaults 2, 2).
	BatchSize int
	// BatchFactor is the geometric growth factor k of the batch
	// sequence; k = 1 means fixed-size batches.
	BatchFactor float64
	// NetworkLatency is the simulated per-superstep barrier latency
	// of the cluster interconnect. Zero disables network simulation;
	// it never applies to MethodTOL or MethodDRLShared.
	NetworkLatency time.Duration
	// Order selects the total-order heuristic: "degree-product"
	// (default, the paper's choice), "degree-sum", "out-degree",
	// "id", or "random". Any total order yields a correct index; the
	// heuristic trades index size and build time.
	Order string
	// CondenseSCC builds the index over the SCC condensation instead
	// of the raw graph and maps queries through the component table.
	// The paper does not condense (distributed SCC is expensive,
	// §II-C); this option quantifies the trade-off on centralized
	// builds.
	CondenseSCC bool
	// Obs receives build-time counters and superstep traces; nil
	// disables observability (see MetricsRegistry).
	Obs *MetricsRegistry
	// LabelBudget > 0 caps every per-vertex label list at that many
	// entries per direction (the memory-bounded mode for graphs whose
	// full 2-hop cover does not fit): label entries stay exact, lists
	// that hit the cap are flagged incomplete, and queries touching a
	// flagged endpoint fall back to a label-pruned BFS over the graph.
	// Requires MethodTOL (the cap is applied during the serial rounds;
	// leaving Method empty selects it), and the resulting index
	// retains the graph — it cannot be serialized with WriteTo.
	LabelBudget int
}

func (o Options) method() Method {
	if o.Method == "" {
		return MethodDRLBatch
	}
	return o.Method
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return 4
	}
	return o.Workers
}

func (o Options) batchParams() drl.BatchParams {
	bp := drl.DefaultBatchParams()
	if o.BatchSize > 0 {
		bp.InitialSize = o.BatchSize
	}
	if o.BatchFactor > 0 {
		bp.Factor = o.BatchFactor
	}
	return bp
}

func (o Options) net() netsim.Model {
	if o.NetworkLatency <= 0 {
		return netsim.Zero()
	}
	m := netsim.Commodity()
	m.BarrierLatency = o.NetworkLatency
	return m
}

// BuildStats describes the cost of an index construction.
type BuildStats struct {
	Method        Method
	Workers       int
	WallTime      time.Duration
	Compute       time.Duration // BSP makespan (distributed methods)
	Communication time.Duration // measured + simulated exchange time
	Supersteps    int
	Messages      int64
	BytesRemote   int64

	// Fault-handling activity (cluster builds; zero for in-process
	// methods, which have no network to fail).
	Retries            int64 // per-call retry attempts
	Recoveries         int64 // checkpoint-restore recoveries
	Checkpoints        int64 // superstep checkpoints taken
	LastCheckpointStep int   // superstep of the newest checkpoint
}

// Index is a reachability index over a graph. Full builds are
// self-contained: queries never touch the graph, so the index can be
// serialized and served from a single machine regardless of where the
// graph lives. A budgeted build (Options.LabelBudget) is the
// exception — it retains the graph for fallback queries and cannot be
// serialized.
type Index struct {
	idx      *label.Index
	bidx     *label.Budgeted // non-nil for memory-bounded builds; retains the graph
	comp     []int32         // optional SCC-condensation mapping
	compSize []int64         // per-component vertex counts (condensed only)
	g        *graph.Digraph  // original graph, when available (witness paths)
	stats    BuildStats
}

// compSizes tallies how many original vertices each condensation
// component contains; ReachableSetSize weights component hits by it.
func compSizes(comp []int32, nc int) []int64 {
	sizes := make([]int64, nc)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// Build constructs the reachability index for g. The context cancels
// the build (the construction checks it between parallel rounds).
func Build(ctx context.Context, g *Graph, opts Options) (*Index, error) {
	if g == nil {
		return nil, errors.New("reachlab: nil graph")
	}
	gd := g.d
	var comp []int32
	if opts.CondenseSCC {
		gd, comp = graph.Condense(gd)
	}
	ord, err := order.ComputeStrategy(gd, order.Strategy(opts.Order))
	if err != nil {
		return nil, fmt.Errorf("reachlab: %w", err)
	}
	method := opts.method()
	start := time.Now()

	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}

	if opts.LabelBudget > 0 {
		if opts.Method != "" && method != MethodTOL {
			return nil, fmt.Errorf("reachlab: LabelBudget requires MethodTOL, not %q", method)
		}
		bidx, err := tol.BuildBudgeted(gd, ord, opts.LabelBudget, cancel)
		if err != nil {
			if errors.Is(err, tol.ErrCanceled) && ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("reachlab: build canceled: %w", ctx.Err())
			}
			return nil, fmt.Errorf("reachlab: building budgeted index: %w", err)
		}
		x := &Index{
			idx:  bidx.Index(),
			bidx: bidx,
			comp: comp,
			g:    g.d,
			stats: BuildStats{
				Method:   MethodTOL,
				Workers:  1,
				WallTime: time.Since(start),
			},
		}
		if comp != nil {
			x.compSize = compSizes(comp, x.idx.NumVertices())
		}
		return x, nil
	}

	var (
		idx *label.Index
		met pregel.Metrics
	)
	switch method {
	case MethodTOL:
		idx, err = tol.BuildCancelable(gd, ord, cancel)
	case MethodDRLShared:
		idx, err = drl.BuildBatch(gd, ord, opts.batchParams(), drl.Options{
			Workers: opts.workers(), Cancel: cancel, Obs: opts.Obs,
		})
	case MethodDRL:
		idx, met, err = drl.BuildDistributed(gd, ord, drl.DistOptions{
			Workers: opts.workers(), Net: opts.net(), Cancel: cancel, Obs: opts.Obs,
		})
	case MethodDRLBasic:
		idx, met, err = drl.BuildDistributedBasic(gd, ord, drl.DistOptions{
			Workers: opts.workers(), Net: opts.net(), Cancel: cancel, Obs: opts.Obs,
		})
	case MethodDRLBatch:
		idx, met, err = drl.BuildDistributedBatch(gd, ord, opts.batchParams(), drl.DistOptions{
			Workers: opts.workers(), Net: opts.net(), Cancel: cancel, Obs: opts.Obs,
		})
	default:
		return nil, fmt.Errorf("reachlab: unknown method %q", method)
	}
	if err != nil {
		if errors.Is(err, drl.ErrCanceled) || errors.Is(err, pregel.ErrCanceled) || errors.Is(err, tol.ErrCanceled) {
			if ctx != nil && ctx.Err() != nil {
				return nil, fmt.Errorf("reachlab: build canceled: %w", ctx.Err())
			}
		}
		return nil, fmt.Errorf("reachlab: building index: %w", err)
	}
	x := &Index{
		idx:  idx,
		comp: comp,
		g:    g.d,
		stats: BuildStats{
			Method:        method,
			Workers:       opts.workers(),
			WallTime:      time.Since(start),
			Compute:       met.ComputeTime,
			Communication: met.TotalComm(),
			Supersteps:    met.Supersteps,
			Messages:      met.Messages,
			BytesRemote:   met.BytesRemote,

			Retries:            met.Retries,
			Recoveries:         met.Recoveries,
			Checkpoints:        met.Checkpoints,
			LastCheckpointStep: met.LastCheckpointStep,
		},
	}
	if comp != nil {
		x.compSize = compSizes(comp, x.idx.NumVertices())
	}
	return x, nil
}

// Reachable answers q(s, t) from the index alone: true iff there is a
// path from s to t in the indexed graph.
func (x *Index) Reachable(s, t VertexID) bool {
	if x.comp != nil {
		s, t = VertexID(x.comp[s]), VertexID(x.comp[t])
		if s == t {
			return true
		}
	}
	if x.bidx != nil {
		return x.bidx.Reachable(s, t)
	}
	return x.idx.Reachable(s, t)
}

// Pair is one (source, target) query of a batch.
type Pair = label.Pair

// ReachableBatch answers q(s, t) for every pair, in the callers'
// order, with answers identical to calling Reachable per pair. The
// batch is processed sorted by source so consecutive pairs sharing a
// source reuse its out-label range — the cheap locality win the batch
// HTTP endpoint exists to expose.
func (x *Index) ReachableBatch(pairs []Pair) []bool {
	if x.comp == nil {
		if x.bidx != nil {
			return x.bidx.ReachableBatch(pairs)
		}
		return x.idx.ReachableBatch(pairs)
	}
	// Condensed index: map both endpoints through the component table;
	// same-component pairs are reachable without consulting labels.
	res := make([]bool, len(pairs))
	sub := make([]Pair, 0, len(pairs))
	subPos := make([]int, 0, len(pairs))
	for i, p := range pairs {
		s, t := VertexID(x.comp[p.S]), VertexID(x.comp[p.T])
		if s == t {
			res[i] = true
			continue
		}
		sub = append(sub, Pair{S: s, T: t})
		subPos = append(subPos, i)
	}
	subRes := x.idx.ReachableBatch
	if x.bidx != nil {
		subRes = x.bidx.ReachableBatch
	}
	for k, ans := range subRes(sub) {
		res[subPos[k]] = ans
	}
	return res
}

// NumVertices returns the number of vertices the index covers (the
// original graph's count for a condensed index).
func (x *Index) NumVertices() int {
	if x.comp != nil {
		return len(x.comp)
	}
	return x.idx.NumVertices()
}

// BuildStats returns the construction cost record.
func (x *Index) BuildStats() BuildStats { return x.stats }

// LabelIndex exposes the underlying flat label index for in-module
// tooling (cmd/drload profiles the flat vs. slice layouts through
// it). The component table of a condensed index is not part of it.
func (x *Index) LabelIndex() *label.Index { return x.idx }

// IndexStats summarizes the index payload.
type IndexStats struct {
	Entries      int64   // total label entries Σ(|L_in|+|L_out|)
	Bytes        int64   // serialized footprint
	MaxLabelSize int     // Δ of §II-A
	AvgLabelSize float64 // mean label size per side

	// Budgeted-build fields (zero for full builds).
	LabelBudget   int // the per-vertex per-direction cap
	OverflowedIn  int // vertices whose in-label list is incomplete
	OverflowedOut int // vertices whose out-label list is incomplete
}

// Stats returns the index payload summary.
func (x *Index) Stats() IndexStats {
	st := IndexStats{
		Entries:      x.idx.Entries(),
		Bytes:        x.idx.SizeBytes(),
		MaxLabelSize: x.idx.MaxLabelSize(),
		AvgLabelSize: x.idx.AvgLabelSize(),
	}
	if x.bidx != nil {
		st.LabelBudget = x.bidx.Budget()
		st.OverflowedIn, st.OverflowedOut = x.bidx.Overflowed()
	}
	return st
}

// The serialized form wraps the label payload in a small envelope so
// condensed indexes can carry their component table.
const indexEnvelopeMagic = uint64(0x524c49584e564531) // "RLIXNVE1"

// WriteTo serializes the index (see ReadIndex). Budgeted indexes are
// not serializable: their query path needs the graph, which is not
// part of the index file format.
func (x *Index) WriteTo(w io.Writer) (int64, error) {
	if x.bidx != nil {
		return 0, errors.New("reachlab: a budgeted index retains its graph and cannot be serialized")
	}
	var written int64
	put := func(data any, size int64) error {
		if err := binary.Write(w, binary.LittleEndian, data); err != nil {
			return fmt.Errorf("reachlab: writing index: %w", err)
		}
		written += size
		return nil
	}
	if err := put(indexEnvelopeMagic, 8); err != nil {
		return written, err
	}
	var compLen uint64
	if x.comp != nil {
		compLen = uint64(len(x.comp))
	}
	if err := put(compLen, 8); err != nil {
		return written, err
	}
	if compLen > 0 {
		if err := put(x.comp, 4*int64(compLen)); err != nil {
			return written, err
		}
	}
	n, err := x.idx.WriteTo(w)
	return written + n, err
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	var magic, compLen uint64
	for _, p := range []*uint64{&magic, &compLen} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("reachlab: reading index envelope: %w", err)
		}
	}
	if magic != indexEnvelopeMagic {
		return nil, errors.New("reachlab: not an index file (bad magic)")
	}
	if compLen > 1<<31 {
		return nil, fmt.Errorf("reachlab: implausible component table size %d", compLen)
	}
	var comp []int32
	if compLen > 0 {
		// Bounded chunks: corrupt headers fail fast without giant
		// allocations.
		const chunk = 1 << 16
		comp = make([]int32, 0, min(compLen, chunk))
		for uint64(len(comp)) < compLen {
			part := make([]int32, min(compLen-uint64(len(comp)), chunk))
			if err := binary.Read(r, binary.LittleEndian, part); err != nil {
				return nil, fmt.Errorf("reachlab: reading component table: %w", err)
			}
			comp = append(comp, part...)
		}
	}
	idx, err := label.Read(r)
	if err != nil {
		return nil, err
	}
	x := &Index{idx: idx, comp: comp}
	if comp != nil {
		nc := idx.NumVertices()
		for _, c := range comp {
			if c < 0 || int(c) >= nc {
				return nil, errors.New("reachlab: corrupt component table")
			}
		}
		x.compSize = compSizes(comp, nc)
	}
	return x, nil
}

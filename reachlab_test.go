package reachlab

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func testEdges() []Edge {
	// The paper's Fig. 1 running example (0-based).
	return []Edge{
		{0, 4}, {0, 7},
		{1, 0}, {1, 2}, {1, 3}, {1, 4},
		{2, 0}, {2, 3}, {2, 9},
		{3, 5}, {3, 10},
		{4, 6},
		{5, 1},
		{6, 0},
		{7, 8},
	}
}

func TestBuildMethodsAgree(t *testing.T) {
	g := NewGraph(11, testEdges())
	methods := []Method{MethodTOL, MethodDRLBasic, MethodDRL, MethodDRLBatch, MethodDRLShared}
	var first *Index
	for _, m := range methods {
		idx, err := Build(context.Background(), g, Options{Method: m, Workers: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for s := VertexID(0); s < 11; s++ {
			for d := VertexID(0); d < 11; d++ {
				want := g.ReachableBFS(s, d)
				if got := idx.Reachable(s, d); got != want {
					t.Fatalf("%s: q(%d,%d) = %v, want %v", m, s, d, got, want)
				}
			}
		}
		if first == nil {
			first = idx
		} else if first.Stats() != idx.Stats() {
			t.Fatalf("%s: index stats differ: %+v vs %+v", m, first.Stats(), idx.Stats())
		}
	}
}

func TestBuildDefaults(t *testing.T) {
	g, err := GenerateGraph("web", 500, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(context.Background(), g, Options{NetworkLatency: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	st := idx.BuildStats()
	if st.Method != MethodDRLBatch || st.Workers != 4 {
		t.Errorf("unexpected defaults: %+v", st)
	}
	if st.Supersteps == 0 || st.Messages == 0 {
		t.Errorf("distributed stats missing: %+v", st)
	}
	if idx.Stats().Entries == 0 {
		t.Error("index is empty")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for s := VertexID(0); s < 11; s++ {
		for d := VertexID(0); d < 11; d++ {
			if got.Reachable(s, d) != idx.Reachable(s, d) {
				t.Fatalf("round-trip changed q(%d,%d)", s, d)
			}
		}
	}
}

func TestBuildCancel(t *testing.T) {
	g, err := GenerateGraph("social", 30000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g, Options{Method: MethodDRLBasic, Workers: 2}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(context.Background(), nil, Options{}); err == nil {
		t.Error("expected error for nil graph")
	}
	g := NewGraph(2, []Edge{{0, 1}})
	if _, err := Build(context.Background(), g, Options{Method: "nope"}); err == nil {
		t.Error("expected error for unknown method")
	}
	if _, err := GenerateGraph("nope", 10, 2, 1); err == nil {
		t.Error("expected error for unknown family")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := NewGraph(3, []Edge{{0, 1}, {0, 1}, {1, 2}, {2, 2}})
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 3 { // duplicate removed
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if len(g.OutNeighbors(0)) != 1 || g.OutNeighbors(0)[0] != 1 {
		t.Errorf("OutNeighbors(0) = %v", g.OutNeighbors(0))
	}
	if len(g.InNeighbors(2)) != 2 {
		t.Errorf("InNeighbors(2) = %v", g.InNeighbors(2))
	}
	if g.Stats() == "" {
		t.Error("empty stats")
	}
}

package reachlab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// Hot-reload correctness: the epoch-tagged atomic swap means every
// response is answered entirely by one serveState, and the
// X-Reachlab-Epoch header says which. These tests swap the handler to
// an index for a *different graph* mid-burst and check every recorded
// answer against the BFS oracle of whichever graph that epoch served
// — the strongest statement of "no torn reads, no stale cache": a
// wrong-epoch cache entry or a half-swapped index would answer from
// the wrong graph and the oracle would catch it.

// reloadFixture serves alternating graphs: odd epochs serve graph A,
// even epochs serve graph B. The loader rebuilds an index from
// scratch each time (exercising the full load path, not pointer
// reuse) and records the refs it was handed.
type reloadFixture struct {
	graphA, graphB *Graph

	mu   sync.Mutex
	refs []string
	next *Graph // graph the next reload installs
}

func newReloadFixture(t *testing.T) *reloadFixture {
	t.Helper()
	// Same vertex count, different edges: every query is in-range in
	// both epochs, but the two graphs disagree on many pairs, so an
	// answer from the wrong epoch's graph is detectable.
	fx := &reloadFixture{
		graphA: randomCyclicGraph(60, 220, 5),
		graphB: randomCyclicGraph(60, 140, 99),
	}
	fx.next = fx.graphB // epoch 1 serves A, so the first swap installs B
	return fx
}

func (fx *reloadFixture) loader(ref string) (*Index, error) {
	fx.mu.Lock()
	g := fx.next
	if g == fx.graphA {
		fx.next = fx.graphB
	} else {
		fx.next = fx.graphA
	}
	fx.refs = append(fx.refs, ref)
	fx.mu.Unlock()
	return Build(context.Background(), g, Options{})
}

// graphForEpoch maps a serving epoch to the graph it answered for.
func (fx *reloadFixture) graphForEpoch(epoch uint64) *Graph {
	if epoch%2 == 1 {
		return fx.graphA
	}
	return fx.graphB
}

// observation is one answered pair tagged with the epoch that served it.
type observation struct {
	s, t  VertexID
	ans   bool
	epoch uint64
}

func TestHotReloadDifferentGraphMidBurst(t *testing.T) {
	cases := []struct {
		name       string
		cachePairs int
		batch      bool
	}{
		{"single-nocache", 0, false},
		{"single-cache", 512, false},
		{"batch-nocache", 0, true},
		{"batch-cache", 512, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newReloadFixture(t)
			idxA, err := Build(context.Background(), fx.graphA, Options{})
			if err != nil {
				t.Fatal(err)
			}
			h := NewQueryHandlerOpts(idxA, ServeOptions{
				Obs:        NewMetricsRegistry(),
				CachePairs: tc.cachePairs,
				Loader:     fx.loader,
			})
			srv := httptest.NewServer(h)
			defer srv.Close()
			httpc := srv.Client()
			n := fx.graphA.NumVertices()

			// Workers hammer the handler and record (pair, answer,
			// epoch) triples; the main goroutine swaps graphs under
			// them. Verification happens after the burst, once the
			// epoch → graph mapping is complete.
			const workers = 4
			var (
				wg   sync.WaitGroup
				stop = make(chan struct{})
				obsM sync.Mutex
				seen []observation
				errs []error
			)
			record := func(o []observation, err error) {
				obsM.Lock()
				seen = append(seen, o...)
				if err != nil {
					errs = append(errs, err)
				}
				obsM.Unlock()
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						s := VertexID((w*17 + i*7) % n)
						u := VertexID((w*5 + i*13 + 1) % n)
						if tc.batch {
							// Batch with a duplicate: one state load
							// answers the whole batch, so all pairs
							// share the response's epoch.
							o, err := askBatch(httpc, srv.URL, [][2]VertexID{{s, u}, {u, s}, {s, u}})
							record(o, err)
						} else {
							o, err := askSingle(httpc, srv.URL, s, u)
							record(o, err)
						}
					}
				}(w)
			}

			// ≥3 swaps mid-burst, spaced so each epoch serves traffic.
			const swaps = 4
			for k := 0; k < swaps; k++ {
				time.Sleep(30 * time.Millisecond)
				resp, err := httpc.Post(srv.URL+"/admin/reload", "application/json", bytes.NewReader(nil))
				if err != nil {
					t.Fatal(err)
				}
				var rr struct {
					Epoch    uint64 `json:"epoch"`
					Vertices int    `json:"vertices"`
				}
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if rr.Epoch != uint64(k+2) {
					t.Fatalf("swap %d returned epoch %d, want %d", k, rr.Epoch, k+2)
				}
				if rr.Vertices != n {
					t.Fatalf("swap %d reports %d vertices, want %d", k, rr.Vertices, n)
				}
			}
			time.Sleep(30 * time.Millisecond)
			close(stop)
			wg.Wait()

			if len(errs) > 0 {
				t.Fatalf("%d failed requests during reload burst; first: %v", len(errs), errs[0])
			}
			if len(seen) == 0 {
				t.Fatal("burst recorded no answers")
			}
			// Every answer must match the oracle of the graph its
			// epoch served.
			perEpoch := map[uint64]int{}
			for _, o := range seen {
				perEpoch[o.epoch]++
				g := fx.graphForEpoch(o.epoch)
				if g == nil {
					t.Fatalf("answer tagged with unknown epoch %d", o.epoch)
				}
				if want := g.ReachableBFS(o.s, o.t); o.ans != want {
					t.Fatalf("epoch %d: reach(%d,%d) = %v, that epoch's graph says %v",
						o.epoch, o.s, o.t, o.ans, want)
				}
			}
			if len(perEpoch) < 2 {
				t.Fatalf("burst only observed epochs %v; swaps did not interleave with traffic", perEpoch)
			}
			if h.Epoch() != swaps+1 {
				t.Fatalf("final epoch %d, want %d", h.Epoch(), swaps+1)
			}
		})
	}
}

func askSingle(httpc *http.Client, base string, s, u VertexID) ([]observation, error) {
	resp, err := httpc.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", base, s, u))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad %s header: %v", EpochHeader, err)
	}
	var body struct {
		Reachable bool `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return []observation{{s: s, t: u, ans: body.Reachable, epoch: epoch}}, nil
}

func askBatch(httpc *http.Client, base string, pairs [][2]VertexID) ([]observation, error) {
	req := struct {
		Pairs [][2]int64 `json:"pairs"`
	}{Pairs: make([][2]int64, len(pairs))}
	for i, p := range pairs {
		req.Pairs[i] = [2]int64{int64(p[0]), int64(p[1])}
	}
	raw, _ := json.Marshal(req)
	resp, err := httpc.Post(base+"/reach/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad %s header: %v", EpochHeader, err)
	}
	var body struct {
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	if len(body.Results) != len(pairs) {
		return nil, fmt.Errorf("%d answers for %d pairs", len(body.Results), len(pairs))
	}
	out := make([]observation, len(pairs))
	for i, p := range pairs {
		out[i] = observation{s: p[0], t: p[1], ans: body.Results[i], epoch: epoch}
	}
	return out, nil
}

// TestReloadStatsAndErrors covers the reload endpoint's bookkeeping
// and failure modes: /stats epoch fields, ref passthrough, loader
// errors, and the 501 for replicas without a loader.
func TestReloadStatsAndErrors(t *testing.T) {
	t.Run("stats-track-epochs", func(t *testing.T) {
		fx := newReloadFixture(t)
		idxA, err := Build(context.Background(), fx.graphA, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := NewQueryHandlerOpts(idxA, ServeOptions{Obs: NewMetricsRegistry(), Loader: fx.loader})
		srv := httptest.NewServer(h)
		defer srv.Close()

		readStats := func() (epoch uint64, vertices int) {
			t.Helper()
			resp, err := srv.Client().Get(srv.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var body struct {
				IndexEpoch    uint64 `json:"index_epoch"`
				IndexVertices int    `json:"index_vertices"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			return body.IndexEpoch, body.IndexVertices
		}
		epoch, vertices := readStats()
		if epoch != 1 || vertices != fx.graphA.NumVertices() {
			t.Fatalf("fresh handler: epoch %d vertices %d", epoch, vertices)
		}
		resp, err := srv.Client().Post(srv.URL+"/admin/reload", "application/json",
			bytes.NewReader([]byte(`{"ref":"rebuilt.idx"}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload status %d", resp.StatusCode)
		}
		epoch, vertices = readStats()
		if epoch != 2 || vertices != fx.graphB.NumVertices() {
			t.Fatalf("after reload: epoch %d vertices %d", epoch, vertices)
		}
		fx.mu.Lock()
		refs := append([]string(nil), fx.refs...)
		fx.mu.Unlock()
		if len(refs) != 1 || refs[0] != "rebuilt.idx" {
			t.Fatalf("loader saw refs %q, want [rebuilt.idx]", refs)
		}
	})

	t.Run("loader-error-keeps-serving", func(t *testing.T) {
		g := randomCyclicGraph(30, 90, 3)
		idx, err := Build(context.Background(), g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := NewQueryHandlerOpts(idx, ServeOptions{
			Obs:    NewMetricsRegistry(),
			Loader: func(ref string) (*Index, error) { return nil, fmt.Errorf("disk on fire") },
		})
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := srv.Client().Post(srv.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failed reload returned %d, want 500", resp.StatusCode)
		}
		// The old epoch keeps serving untouched.
		if h.Epoch() != 1 {
			t.Fatalf("failed reload advanced epoch to %d", h.Epoch())
		}
		resp, err = srv.Client().Get(srv.URL + "/reach?s=0&t=1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query after failed reload: status %d", resp.StatusCode)
		}
	})

	t.Run("no-loader-501", func(t *testing.T) {
		g := randomCyclicGraph(30, 90, 3)
		idx, err := Build(context.Background(), g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := NewQueryHandler(idx)
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := srv.Client().Post(srv.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("loaderless reload returned %d, want 501", resp.StatusCode)
		}
	})

	t.Run("cache-counters-survive-swap", func(t *testing.T) {
		// The hits+misses == pairs reconciliation (PR 5's invariant)
		// must hold across epochs: retired-epoch counters fold into
		// the handler totals at swap time.
		g := randomCyclicGraph(40, 120, 7)
		idx, err := Build(context.Background(), g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := NewQueryHandlerOpts(idx, ServeOptions{Obs: NewMetricsRegistry(), CachePairs: 256})
		srv := httptest.NewServer(h)
		defer srv.Close()
		ask := func(times int) {
			for i := 0; i < times; i++ {
				resp, err := srv.Client().Get(fmt.Sprintf("%s/reach?s=%d&t=%d", srv.URL, i%5, (i+1)%5))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
			}
		}
		ask(20)
		h1, m1 := h.CacheStats()
		if h1+m1 != 20 {
			t.Fatalf("before swap: hits %d + misses %d != 20 pairs", h1, m1)
		}
		idx2, err := Build(context.Background(), g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if e := h.Swap(idx2); e != 2 {
			t.Fatalf("swap returned epoch %d, want 2", e)
		}
		ask(15)
		h2, m2 := h.CacheStats()
		if h2+m2 != 35 {
			t.Fatalf("after swap: hits %d + misses %d != 35 pairs (retired counters lost?)", h2, m2)
		}
		// The new epoch's cache starts cold: the first post-swap ask
		// of each distinct pair must have missed.
		if m2 <= m1 {
			t.Fatalf("misses did not grow across the swap (%d → %d); stale cache survived", m1, m2)
		}
	})
}

// richObservation is one rich-query answer tagged with the epoch that
// served it: a witness path, a set-size count, or one one-source
// sweep result.
type richObservation struct {
	kind  string // "path" | "count" | "from"
	s, t  VertexID
	ans   bool
	count int
	path  []VertexID
	epoch uint64
}

// TestHotReloadRichQueriesMidBurst is the reload-correctness statement
// for the rich endpoints: workers hammer /reach/path, /reach/count and
// /reach/from while /admin/reload swaps the handler between two
// different graphs, and every recorded answer must match the oracle of
// the graph its epoch served — including every hop of every witness
// path, which only exists in one of the two graphs' edge sets. The
// update loop attaches the epoch's own graph at swap time, so a path
// walked against the wrong epoch's index would produce phantom edges
// and fail here.
func TestHotReloadRichQueriesMidBurst(t *testing.T) {
	fx := newReloadFixture(t)
	idxA, err := Build(context.Background(), fx.graphA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := NewQueryHandlerOpts(idxA, ServeOptions{
		Obs:        NewMetricsRegistry(),
		CachePairs: 512,
		Loader:     fx.loader,
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	httpc := srv.Client()
	n := fx.graphA.NumVertices()

	const workers = 4
	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
		obsM sync.Mutex
		seen []richObservation
		errs []error
	)
	record := func(o richObservation, err error) {
		obsM.Lock()
		if err != nil {
			errs = append(errs, err)
		} else {
			seen = append(seen, o)
		}
		obsM.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := VertexID((w*17 + i*7) % n)
				u := VertexID((w*5 + i*13 + 1) % n)
				switch i % 3 {
				case 0:
					record(askPath(httpc, srv.URL, s, u))
				case 1:
					record(askCount(httpc, srv.URL, s))
				default:
					record(askFrom(httpc, srv.URL, s, u))
				}
			}
		}(w)
	}

	const swaps = 4
	for k := 0; k < swaps; k++ {
		time.Sleep(30 * time.Millisecond)
		resp, err := httpc.Post(srv.URL+"/admin/reload", "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: status %d", k, resp.StatusCode)
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	if len(errs) > 0 {
		t.Fatalf("%d failed rich requests during reload burst; first: %v", len(errs), errs[0])
	}
	if len(seen) == 0 {
		t.Fatal("burst recorded no answers")
	}

	// Memoized per-graph oracles.
	setSizes := map[*Graph]map[VertexID]int{}
	edgeSets := map[*Graph]map[[2]VertexID]bool{}
	oracleFor := func(g *Graph) (map[VertexID]int, map[[2]VertexID]bool) {
		if _, ok := setSizes[g]; !ok {
			sizes := map[VertexID]int{}
			for s := 0; s < g.NumVertices(); s++ {
				sizes[VertexID(s)] = oracleSetSize(g, VertexID(s))
			}
			setSizes[g] = sizes
			edgeSets[g] = edgeSet(g)
		}
		return setSizes[g], edgeSets[g]
	}

	perEpoch := map[uint64]int{}
	for _, o := range seen {
		perEpoch[o.epoch]++
		g := fx.graphForEpoch(o.epoch)
		sizes, edges := oracleFor(g)
		switch o.kind {
		case "path":
			want := g.ReachableBFS(o.s, o.t)
			if o.ans != want {
				t.Fatalf("epoch %d: path(%d,%d).reachable = %v, that epoch's graph says %v",
					o.epoch, o.s, o.t, o.ans, want)
			}
			if !want {
				continue
			}
			if len(o.path) == 0 || o.path[0] != o.s || o.path[len(o.path)-1] != o.t {
				t.Fatalf("epoch %d: path(%d,%d) endpoints wrong: %v", o.epoch, o.s, o.t, o.path)
			}
			for i := 0; i+1 < len(o.path); i++ {
				if !edges[[2]VertexID{o.path[i], o.path[i+1]}] {
					t.Fatalf("epoch %d: path(%d,%d) hop %d→%d is not an edge of that epoch's graph: %v",
						o.epoch, o.s, o.t, o.path[i], o.path[i+1], o.path)
				}
			}
		case "count":
			if o.count != sizes[o.s] {
				t.Fatalf("epoch %d: count(%d) = %d, that epoch's graph says %d",
					o.epoch, o.s, o.count, sizes[o.s])
			}
		case "from":
			if want := g.ReachableBFS(o.s, o.t); o.ans != want {
				t.Fatalf("epoch %d: from(%d)[%d] = %v, that epoch's graph says %v",
					o.epoch, o.s, o.t, o.ans, want)
			}
		}
	}
	if len(perEpoch) < 2 {
		t.Fatalf("burst only observed epochs %v; swaps did not interleave with traffic", perEpoch)
	}
}

func askPath(httpc *http.Client, base string, s, u VertexID) (richObservation, error) {
	resp, err := httpc.Get(fmt.Sprintf("%s/reach/path?s=%d&t=%d", base, s, u))
	if err != nil {
		return richObservation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return richObservation{}, fmt.Errorf("path status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	if err != nil {
		return richObservation{}, fmt.Errorf("bad %s header: %v", EpochHeader, err)
	}
	var body struct {
		Reachable bool       `json:"reachable"`
		Path      []VertexID `json:"path"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return richObservation{}, err
	}
	return richObservation{kind: "path", s: s, t: u, ans: body.Reachable, path: body.Path, epoch: epoch}, nil
}

func askCount(httpc *http.Client, base string, s VertexID) (richObservation, error) {
	resp, err := httpc.Get(fmt.Sprintf("%s/reach/count?s=%d", base, s))
	if err != nil {
		return richObservation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return richObservation{}, fmt.Errorf("count status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	if err != nil {
		return richObservation{}, fmt.Errorf("bad %s header: %v", EpochHeader, err)
	}
	var body struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return richObservation{}, err
	}
	return richObservation{kind: "count", s: s, count: body.Count, epoch: epoch}, nil
}

// askFrom issues a one-target /reach/from so the observation stays a
// single verifiable (s, t, ans, epoch) tuple.
func askFrom(httpc *http.Client, base string, s, u VertexID) (richObservation, error) {
	raw, _ := json.Marshal(map[string]any{"s": s, "targets": []VertexID{u}})
	resp, err := httpc.Post(base+"/reach/from", "application/json", bytes.NewReader(raw))
	if err != nil {
		return richObservation{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return richObservation{}, fmt.Errorf("from status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
	if err != nil {
		return richObservation{}, fmt.Errorf("bad %s header: %v", EpochHeader, err)
	}
	var body struct {
		Results []bool `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return richObservation{}, err
	}
	if len(body.Results) != 1 {
		return richObservation{}, fmt.Errorf("from answered %d results for 1 target", len(body.Results))
	}
	return richObservation{kind: "from", s: s, t: u, ans: body.Results[0], epoch: epoch}, nil
}

#!/bin/bash
# Full experiment battery for EXPERIMENTS.md. Cut-offs are scaled with
# the datasets (the paper uses 2h on the full-size graphs).
cd /root/repo/results
set -x
./drbench -exp fig5   -suite medium -cutoff 60s                 > fig5.txt   2> fig5.err
./drbench -exp fig8   -suite medium -cutoff 45s                 > fig8.txt   2> fig8.err
./drbench -exp fig9   -suite medium -cutoff 60s                 > fig9.txt   2> fig9.err
./drbench -exp ablation-order    -suite medium -cutoff 45s      > ablation_order.txt 2> ablation_order.err
./drbench -exp ablation-condense -suite medium -cutoff 45s      > ablation_condense.txt 2> ablation_condense.err
./drbench -exp extras -suite medium -cutoff 45s                 > extras.txt 2> extras.err
./drbench -exp fig7   -suite medium -cutoff 25s                 > fig7.txt   2> fig7.err
./drbench -exp fig6   -suite medium -cutoff 25s                 > fig6.txt   2> fig6.err
./drbench -exp table6 -suite medium -cutoff 30s                 > table6.txt 2> table6.err
echo DONE > done.marker

#!/bin/sh
# End-to-end fleet smoke (make fleettest, CI fleet-smoke job): a
# 3-replica drserve fleet behind drrouter in sharded mode, hammered by
# drload with every answer verified against the index. The script
# walks the full operational story — healthy fleet, kill -9 of a
# replica with traffic still flowing, restart + automatic readmission,
# a fleet-wide zero-downtime index reload (epoch check on every
# replica), a reload-under-load burst, drain/readmit, and clean
# SIGTERM shutdown of everything. drload exits nonzero on any failed
# request or wrong answer, so a single dropped or stale query fails
# the smoke.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
router=127.0.0.1:19400
r1=127.0.0.1:19401
r2=127.0.0.1:19402
r3=127.0.0.1:19403
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

wait_http() { # wait_http url what
	i=0
	until curl -sf "$1" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "$2 never became healthy" >&2; exit 1; }
		sleep 0.1
	done
}

healthy_count() {
	curl -sf "http://$router/stats" | grep -o '"state":"up"' | wc -l
}

wait_healthy() { # wait_healthy n
	i=0
	until [ "$(healthy_count)" -eq "$1" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "fleet never reached $1 healthy replicas" >&2; curl -s "http://$router/stats" >&2; exit 1; }
		sleep 0.1
	done
}

# Backgrounds a replica in THIS shell (no command substitution — the
# daemon must stay our child so `wait` can collect its exit status)
# and leaves its pid in $!; stdio goes to a log so nothing holds a
# pipe open.
start_replica() { # start_replica addr
	"$work/bin/drserve" -idx "$work/graph.idx" -listen "$1" -grace 5s \
		>"$work/replica-${1##*:}.log" 2>&1 &
}

echo "== build tools"
go build -o "$work/bin/" ./cmd/drgen ./cmd/drlabel ./cmd/drserve ./cmd/drrouter ./cmd/drload

echo "== generate graph + index"
"$work/bin/drgen" -family web -n 20000 -deg 6 -seed 7 -o "$work/graph.bin"
"$work/bin/drlabel" -i "$work/graph.bin" -o "$work/graph.idx" -method drl-shared -workers 4

echo "== start 3 replicas + sharded router"
start_replica "$r1"; p1=$!; pids="$pids $p1"
start_replica "$r2"; p2=$!; pids="$pids $p2"
start_replica "$r3"; p3=$!; pids="$pids $p3"
wait_http "http://$r1/healthz" "replica 1"
wait_http "http://$r2/healthz" "replica 2"
wait_http "http://$r3/healthz" "replica 3"
"$work/bin/drrouter" -replicas "$r1,$r2,$r3" -mode sharded -listen "$router" \
	-check-every 100ms -grace 5s &
router_pid=$!
pids="$pids $router_pid"
wait_http "http://$router/healthz" "router"
wait_healthy 3

echo "== verified bursts through the router (single + batch)"
"$work/bin/drload" -addr "$router" -clients 4 -requests 2000 -batch 1 -verify-idx "$work/graph.idx" -seed 3
"$work/bin/drload" -addr "$router" -clients 4 -requests 500 -batch 16 -verify-idx "$work/graph.idx" -seed 4

echo "== verified burst against the replicas directly (-addrs spread)"
"$work/bin/drload" -addrs "$r1,$r2,$r3" -clients 3 -requests 600 -batch 8 -verify-idx "$work/graph.idx" -seed 5

echo "== kill -9 replica 2; the fleet routes around it"
kill -9 "$p2"
wait_healthy 2
"$work/bin/drload" -addr "$router" -clients 4 -requests 1000 -batch 8 -verify-idx "$work/graph.idx" -seed 6

echo "== restart replica 2; the health loop readmits it"
start_replica "$r2"; p2=$!
pids="$pids $p2"
wait_healthy 3

echo "== fleet-wide zero-downtime reload: every replica must reach epoch 2"
curl -sf -X POST "http://$router/admin/reload" >/dev/null
for r in "$r1" "$r2" "$r3"; do
	epoch_line="$(curl -sf "http://$r/stats" | grep -o '"index_epoch":[0-9]*')"
	[ "$epoch_line" = '"index_epoch":2' ] || {
		echo "replica $r at $epoch_line after fleet reload, want epoch 2" >&2
		exit 1
	}
done

echo "== reload-under-load: epoch swaps land while a verified burst runs"
"$work/bin/drload" -addr "$router" -clients 4 -duration 3s -batch 8 \
	-verify-idx "$work/graph.idx" -reload-every 500ms -seed 7

echo "== drain + readmit replica 3"
curl -sf -X POST "http://$router/admin/drain?replica=$r3" >/dev/null
i=0
until curl -sf "http://$router/stats" | grep -q "\"addr\":\"$r3\",\"state\":\"drained\""; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "replica 3 never drained" >&2; exit 1; }
	sleep 0.1
done
"$work/bin/drload" -addr "$router" -clients 2 -requests 400 -batch 8 -verify-idx "$work/graph.idx" -seed 8
curl -sf -X POST "http://$router/admin/readmit?replica=$r3" >/dev/null
wait_healthy 3

echo "== graceful shutdown: router first, then replicas"
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
[ "$rc" -eq 0 ] || { echo "drrouter exited $rc on SIGTERM" >&2; exit 1; }
for p in "$p1" "$p2" "$p3"; do
	kill -TERM "$p"
	rc=0
	wait "$p" || rc=$?
	[ "$rc" -eq 0 ] || { echo "drserve exited $rc on SIGTERM" >&2; exit 1; }
done
pids=""

echo "fleet smoke: OK"

#!/bin/sh
# End-to-end rich-query smoke (make querytest, CI query-smoke job):
# generate a graph, build its index, start drserve with the graph
# attached (witness paths enabled), fire verified drload bursts at all
# three rich endpoints — /reach/path, /reach/count, /reach/join — plus
# spot-check the HTTP surface with curl, then regenerate the
# deterministic query-workload record and gate it exactly against the
# committed baseline with benchcompare. No timings are gated; every
# compared number is a pure function of the generator seed and the
# code.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr=127.0.0.1:18521
srv_pid=""
cleanup() {
	[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build tools"
go build -o "$work/bin/" ./cmd/drgen ./cmd/drlabel ./cmd/drserve ./cmd/drload ./cmd/drbench ./cmd/benchcompare

echo "== generate graph + index"
"$work/bin/drgen" -family web -n 20000 -deg 6 -seed 7 -o "$work/graph.bin"
"$work/bin/drlabel" -i "$work/graph.bin" -o "$work/graph.idx" -method drl-shared -workers 4

echo "== start drserve with witness paths (-idx + -graph)"
"$work/bin/drserve" -idx "$work/graph.idx" -graph "$work/graph.bin" -listen "$addr" -grace 5s &
srv_pid=$!
i=0
until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "drserve never became healthy" >&2; exit 1; }
	sleep 0.1
done

echo "== curl spot checks: shapes and refusals"
curl -sf "http://$addr/reach/path?s=0&t=0" | grep -q '"reachable":true' ||
	{ echo "path(0,0) should be reachable" >&2; exit 1; }
curl -sf "http://$addr/reach/count?s=0" | grep -q '"count":' ||
	{ echo "count(0) missing count field" >&2; exit 1; }
printf '{"sources":[0,1],"targets":[2,3]}' |
	curl -sf -X POST -d @- "http://$addr/reach/join" | tail -1 | grep -q '"done":true' ||
	{ echo "join stream missing done line" >&2; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/reach/path?s=0&t=notanumber")"
[ "$code" = "400" ] || { echo "bad path param answered $code, want 400" >&2; exit 1; }

echo "== drload burst: witness paths, bit + hops verified"
"$work/bin/drload" -mode path -addr "$addr" -clients 4 -requests 2000 \
	-verify-idx "$work/graph.idx" -verify-graph "$work/graph.bin" -seed 3

echo "== drload burst: set sizes, verified"
"$work/bin/drload" -mode count -addr "$addr" -clients 4 -requests 1000 \
	-verify-idx "$work/graph.idx" -seed 4

echo "== drload burst: streaming joins, exact result set verified"
"$work/bin/drload" -mode join -addr "$addr" -clients 4 -requests 200 -batch 16 \
	-verify-idx "$work/graph.idx" -seed 5

echo "== graceful shutdown on SIGTERM"
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=""
[ "$rc" -eq 0 ] || { echo "drserve exited $rc on SIGTERM" >&2; exit 1; }

echo "== query-workload gate: regenerate and diff against the committed baseline"
baseline="$(ls BENCH_query-citation-*.json | sort | tail -1)"
"$work/bin/drbench" -exp query -scale-n 20000 -scale-deg 4 -scale-seed 1 -q -json -json-dir "$work"
fresh="$(ls "$work"/BENCH_query-citation-*.json)"
"$work/bin/benchcompare" "$baseline" "$fresh"

echo "query smoke: OK"

#!/bin/sh
# End-to-end scale-path smoke (make scale-smoke, CI scale-smoke job):
# exercise the 10^8-edge build path at ~10^6 edges and gate its
# byte-identity contracts. The streamed generator must write the exact
# bytes of the in-RAM generator, an mmap-loaded graph must label to
# the exact index of a copy-loaded graph, and two drbench -exp scale
# runs must agree on every deterministic output (edge count, file
# bytes, index entries/bytes, overflow counts) via benchcompare.
#
# Only byte and count identities are gated — no timings — so the smoke
# is immune to loaded CI runners.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
cleanup() {
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build tools"
go build -o "$work/bin/" ./cmd/drgen ./cmd/drlabel ./cmd/drbench ./cmd/benchcompare

echo "== generate ~1.2M-edge graph, in-RAM vs streamed (files must be byte-identical)"
"$work/bin/drgen" -family citation -n 300000 -deg 4 -seed 9 -o "$work/ram.bin"
"$work/bin/drgen" -family citation -n 300000 -deg 4 -seed 9 -stream -o "$work/stream.bin"
cmp "$work/ram.bin" "$work/stream.bin" || {
	echo "streamed generator wrote different bytes than the in-RAM generator" >&2
	exit 1
}

echo "== label copy-loaded vs mmap-loaded (indexes must be byte-identical)"
"$work/bin/drlabel" -i "$work/ram.bin" -method tol -o "$work/ram.idx"
"$work/bin/drlabel" -i "$work/ram.bin" -method tol -mmap -o "$work/mmap.idx"
cmp "$work/ram.idx" "$work/mmap.idx" || {
	echo "mmap-loaded graph labeled to a different index than the copy-loaded graph" >&2
	exit 1
}

echo "== drbench -exp scale twice; benchcompare gates the deterministic outputs"
"$work/bin/drbench" -exp scale -scale-family citation -scale-n 100000 -scale-deg 4 \
	-scale-seed 9 -scale-budget 8 -runs 1 -q -json -json-dir "$work"
rec1="$(ls "$work"/BENCH_scale-*.json)"
mv "$rec1" "$work/scale-a.json"
"$work/bin/drbench" -exp scale -scale-family citation -scale-n 100000 -scale-deg 4 \
	-scale-seed 9 -scale-budget 8 -runs 1 -q -json -json-dir "$work"
rec2="$(ls "$work"/BENCH_scale-*.json)"
"$work/bin/benchcompare" "$work/scale-a.json" "$rec2"

echo "== scale smoke passed"

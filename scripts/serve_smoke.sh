#!/bin/sh
# End-to-end serving smoke (make loadtest, CI serve-smoke job):
# generate a graph, build its index, start drserve, fire drload bursts
# with answer verification against the index, check graceful shutdown,
# then profile the flat vs. pre-flat slice layout in-process and gate
# the pair with benchcompare -queries.
#
# Everything runs on one machine inside a temp dir; the only absolute
# numbers compared are two runs from the same process minutes apart,
# so a generous tolerance still catches a gross layout regression
# without flaking on loaded CI runners.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr=127.0.0.1:18321
srv_pid=""
cleanup() {
	[ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build tools"
go build -o "$work/bin/" ./cmd/drgen ./cmd/drlabel ./cmd/drserve ./cmd/drload ./cmd/benchcompare

echo "== generate graph + index"
"$work/bin/drgen" -family web -n 20000 -deg 6 -seed 7 -o "$work/graph.bin"
"$work/bin/drlabel" -i "$work/graph.bin" -o "$work/graph.idx" -method drl-shared -workers 4

echo "== start drserve"
"$work/bin/drserve" -idx "$work/graph.idx" -listen "$addr" -grace 5s &
srv_pid=$!
i=0
until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && { echo "drserve never became healthy" >&2; exit 1; }
	sleep 0.1
done

echo "== drload burst: single queries, verified against the index"
"$work/bin/drload" -addr "$addr" -clients 4 -requests 2000 -batch 1 -verify-idx "$work/graph.idx" -seed 3

echo "== drload burst: batch queries, verified against the index"
"$work/bin/drload" -addr "$addr" -clients 4 -requests 500 -batch 16 -verify-idx "$work/graph.idx" -seed 4

echo "== graceful shutdown on SIGTERM"
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=""
[ "$rc" -eq 0 ] || { echo "drserve exited $rc on SIGTERM" >&2; exit 1; }

echo "== layout gate: flat must not regress against the slice baseline"
"$work/bin/drload" -mode inproc -idx "$work/graph.idx" -layout slice -name smoke -queries 100000 -zipf 0 -seed 1 -json -json-dir "$work"
sleep 1
"$work/bin/drload" -mode inproc -idx "$work/graph.idx" -layout flat -name smoke -queries 100000 -zipf 0 -seed 1 -json -json-dir "$work"
slice_rec="$(ls "$work"/BENCH_load-smoke-layout-slice-*.json)"
flat_rec="$(ls "$work"/BENCH_load-smoke-layout-flat-*.json)"
"$work/bin/benchcompare" -queries -qtolerance 1.0 "$slice_rec" "$flat_rec"

echo "serve smoke: OK"

#!/bin/sh
# End-to-end update smoke (make updatetest, CI update-smoke job):
# drserve in update mode — a mutable graph behind POST /edges with a
# write-ahead log and a background refresher. Checks the whole
# mutation contract over real HTTP:
#
#   - point writes: an insert is acknowledged with the epoch that will
#     contain it, the answer flips once that epoch is live, and the
#     matching delete restores the original answer;
#   - a drload burst with concurrent writers (queries and mutations on
#     the same server, every write acknowledged);
#   - durability: kill -9 mid-stream, restart on the same WAL, and
#     every acknowledged write must survive the replay;
#   - graceful shutdown on SIGTERM.
#
# Everything runs on one machine inside a temp dir.
set -eu

cd "$(dirname "$0")/.."
work="$(mktemp -d)"
addr=127.0.0.1:18325
srv_pid=""
cleanup() {
	[ -n "$srv_pid" ] && kill -9 "$srv_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

# post_edge OP U V -> prints the acknowledged epoch
post_edge() {
	curl -sf -X POST "http://$addr/edges" \
		-d "{\"op\":\"$1\",\"u\":$2,\"v\":$3}" |
		sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'
}

# ack_seq OP U V -> prints the acknowledged log seq
ack_seq() {
	curl -sf -X POST "http://$addr/edges" \
		-d "{\"op\":\"$1\",\"u\":$2,\"v\":$3}" |
		sed -n 's/.*"seq":\([0-9]*\).*/\1/p'
}

# reach U V -> prints true or false
reach() {
	curl -sf "http://$addr/reach?s=$1&t=$2" |
		sed -n 's/.*"reachable":\(true\|false\).*/\1/p'
}

# serving_epoch -> prints the X-Reachlab-Epoch of a query response
serving_epoch() {
	curl -sf -i "http://$addr/reach?s=0&t=1" |
		tr -d '\r' | sed -n 's/^X-Reachlab-Epoch: //p'
}

# wait_epoch N -> polls until the serving epoch reaches N
wait_epoch() {
	i=0
	while [ "$(serving_epoch)" -lt "$1" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "epoch never reached $1" >&2; exit 1; }
		sleep 0.1
	done
}

# stat_field NAME -> prints the integer field NAME from /stats
stat_field() {
	curl -sf "http://$addr/stats" |
		sed -n "s/.*\"$1\":\([0-9]*\).*/\1/p"
}

wait_healthy() {
	i=0
	until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "drserve never became healthy" >&2; exit 1; }
		sleep 0.2
	done
}

echo "== build tools"
go build -o "$work/bin/" ./cmd/drgen ./cmd/drserve ./cmd/drload

echo "== generate graph"
"$work/bin/drgen" -family citation -n 2000 -deg 4 -seed 7 -text -o "$work/graph.txt"

echo "== start drserve in update mode"
"$work/bin/drserve" -graph "$work/graph.txt" -wal "$work/edges.wal" \
	-refresh-every 200ms -listen "$addr" -grace 5s &
srv_pid=$!
wait_healthy

echo "== point writes: insert flips the answer at the acked epoch, delete restores it"
# Find a pair (u, v) that is initially unreachable; inserting the
# direct edge u->v must flip it, deleting must flip it back. In the
# citation family edges cite backwards (new -> old), so old -> new
# pairs are unreachable until we add one.
u="" v=""
for cand_u in 3 17 42; do
	for cand_v in 1999 1500 1234; do
		if [ "$(reach "$cand_u" "$cand_v")" = "false" ]; then
			u=$cand_u v=$cand_v
			break 2
		fi
	done
done
[ -n "$u" ] || { echo "no unreachable pair found" >&2; exit 1; }

epoch="$(post_edge insert "$u" "$v")"
[ -n "$epoch" ] || { echo "insert not acknowledged" >&2; exit 1; }
wait_epoch "$epoch"
[ "$(reach "$u" "$v")" = "true" ] || {
	echo "reach($u,$v) still false at acked epoch $epoch" >&2
	exit 1
}

epoch="$(post_edge delete "$u" "$v")"
wait_epoch "$epoch"
[ "$(reach "$u" "$v")" = "false" ] || {
	echo "reach($u,$v) not restored after delete" >&2
	exit 1
}

echo "== drload burst with concurrent writers"
"$work/bin/drload" -addr "$addr" -clients 4 -requests 1500 -batch 8 \
	-writers 2 -write-every 20ms -write-window 500 -seed 5

echo "== update stats sanity"
last_seq="$(stat_field last_seq)"
[ "$last_seq" -gt 2 ] || { echo "last_seq=$last_seq after burst" >&2; exit 1; }
[ "$(stat_field refreshes)" -gt 0 ] || { echo "no refreshes recorded" >&2; exit 1; }

echo "== durability: kill -9, restart on the same WAL"
[ "$(reach 5 1998)" = "false" ] || { echo "probe pair (5,1998) already reachable" >&2; exit 1; }
[ "$(reach 7 1997)" = "false" ] || { echo "probe pair (7,1997) already reachable" >&2; exit 1; }
seq1="$(ack_seq insert 5 1998)"
seq2="$(ack_seq insert 7 1997)"
[ "$seq2" -gt "$seq1" ] || { echo "acks not monotone: $seq1 then $seq2" >&2; exit 1; }
kill -9 "$srv_pid"
wait "$srv_pid" 2>/dev/null || true

"$work/bin/drserve" -graph "$work/graph.txt" -wal "$work/edges.wal" \
	-refresh-every 200ms -listen "$addr" -grace 5s &
srv_pid=$!
wait_healthy
applied="$(stat_field applied_seq)"
[ "$applied" -ge "$seq2" ] || {
	echo "acked seq $seq2 lost: applied_seq=$applied after replay" >&2
	exit 1
}
[ "$(reach 5 1998)" = "true" ] || { echo "acked insert(5,1998) lost" >&2; exit 1; }
[ "$(reach 7 1997)" = "true" ] || { echo "acked insert(7,1997) lost" >&2; exit 1; }

echo "== graceful shutdown on SIGTERM"
kill -TERM "$srv_pid"
rc=0
wait "$srv_pid" || rc=$?
srv_pid=""
[ "$rc" -eq 0 ] || { echo "drserve exited $rc on SIGTERM" >&2; exit 1; }

echo "update smoke: OK"

package reachlab

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// QueryHandler serves reachability queries from an index over HTTP —
// the paper's deployment: the distributed graph stays put, the
// compact index answers queries from one machine (§I). cmd/drserve
// wraps it into a standalone server.
//
// Endpoints:
//
//	GET /reach?s=<id>&t=<id>   → {"s":3,"t":17,"reachable":true}
//	GET /stats                 → index statistics
//	GET /healthz               → 200 ok
//	GET /metrics               → Prometheus text exposition
//	GET /trace                 → superstep traces (JSON)
//	GET /debug/pprof/          → net/http/pprof profiles
//
// Per-query latency lands in the "reachlab_query_seconds" histogram;
// requests and errors are counted per handler in
// "reachlab_http_requests_total" / "reachlab_http_errors_total".
type QueryHandler struct {
	idx *Index
	mux *http.ServeMux
	obs *obs.Registry
}

// NewQueryHandler returns an http.Handler serving queries from idx,
// reporting to the process-wide default registry.
func NewQueryHandler(idx *Index) *QueryHandler {
	return NewQueryHandlerObs(idx, obs.Default)
}

// NewQueryHandlerObs is NewQueryHandler reporting to reg (nil disables
// instrumentation; /metrics and /trace then serve empty documents).
func NewQueryHandlerObs(idx *Index, reg *obs.Registry) *QueryHandler {
	h := &QueryHandler{idx: idx, mux: http.NewServeMux(), obs: reg}
	h.mux.HandleFunc("GET /reach", h.reach)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	obs.Mount(h.mux, reg)
	return h
}

// ServeHTTP implements http.Handler.
func (h *QueryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *QueryHandler) vertex(r *http.Request, name string) (VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", raw, err)
	}
	if v < 0 || v >= h.idx.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", v, h.idx.NumVertices())
	}
	return VertexID(v), nil
}

// fail records an error for the handler and sends the HTTP error.
func (h *QueryHandler) fail(w http.ResponseWriter, handler, msg string, code int) {
	h.obs.Counter(obs.Label("reachlab_http_errors_total", "handler", handler)).Inc()
	http.Error(w, msg, code)
}

func (h *QueryHandler) reach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "reach")).Inc()
	s, err := h.vertex(r, "s")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	t, err := h.vertex(r, "t")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	reachable := h.idx.Reachable(s, t)
	h.obs.Histogram("reachlab_query_seconds", obs.LatencyBuckets).
		Observe(time.Since(start).Seconds())
	writeJSON(w, map[string]any{
		"s":         s,
		"t":         t,
		"reachable": reachable,
	})
}

func (h *QueryHandler) stats(w http.ResponseWriter, _ *http.Request) {
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "stats")).Inc()
	st := h.idx.Stats()
	bs := h.idx.BuildStats()
	writeJSON(w, map[string]any{
		"vertices":       h.idx.NumVertices(),
		"entries":        st.Entries,
		"bytes":          st.Bytes,
		"max_label_size": st.MaxLabelSize,
		"avg_label_size": st.AvgLabelSize,
		// Construction cost and fault-handling activity. All zero for
		// an index loaded from disk (ReadIndex carries no build record).
		"build": map[string]any{
			"method":               string(bs.Method),
			"workers":              bs.Workers,
			"supersteps":           bs.Supersteps,
			"retries":              bs.Retries,
			"recoveries":           bs.Recoveries,
			"checkpoints":          bs.Checkpoints,
			"last_checkpoint_step": bs.LastCheckpointStep,
		},
	})
}

// writeJSON encodes v directly onto the wire. If encoding fails the
// status line and part of the body are already out, so sending
// http.Error would splice an error page into a half-written JSON
// document; log the failure and drop the connection output instead.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("reachlab: writing JSON response: %v", err)
	}
}

package reachlab

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/qcache"
)

// QueryHandler serves reachability queries from an index over HTTP —
// the paper's deployment: the distributed graph stays put, the
// compact index answers queries from one machine (§I). cmd/drserve
// wraps it into a standalone server; cmd/drrouter fans traffic across
// a fleet of them (DESIGN.md §11).
//
// Endpoints:
//
//	GET  /reach?s=<id>&t=<id>  → {"s":3,"t":17,"reachable":true}
//	POST /reach/batch          → {"count":2,"results":[true,false]}
//	                             body: {"pairs":[[3,17],[5,9]]}
//	GET  /reach/path?s=&t=     → {"s":3,"t":17,"reachable":true,"path":[3,8,17]}
//	GET  /reach/count?s=<id>   → {"s":3,"count":941}
//	POST /reach/from           → {"s":3,"count":2,"results":[true,false,true]}
//	                             body: {"s":3,"targets":[17,9,3]}
//	POST /reach/join           → NDJSON stream of {"s":..,"t":..} pairs,
//	                             then {"done":true,"count":..,"scanned":..}
//	                             body: {"sources":[..],"targets":[..]}
//	POST /admin/reload         → {"epoch":2,"vertices":20000}
//	                             body (optional): {"ref":"other.idx"}
//	GET  /stats                → index statistics
//	GET  /healthz              → 200 ok
//	GET  /metrics              → Prometheus text exposition
//	GET  /trace                → superstep traces (JSON)
//	GET  /debug/pprof/         → net/http/pprof profiles
//
// The handler serves an *epoch* of the index: the frozen flat index
// and its hot-pair cache live together in one immutable serveState
// behind an atomic.Pointer, so a reload (Swap) replaces both as one
// unit and no query ever observes a torn index or a cache entry from
// a different index. Every /reach and /reach/batch response carries
// the serving epoch in the X-Reachlab-Epoch header, /healthz carries
// it too (plus X-Reachlab-Vertices) so a fleet health probe learns it
// for free, and /stats reports index_epoch and index_vertices so
// operators can confirm a reload landed on every replica.
//
// Per-query latency lands in the "reachlab_query_seconds" histogram
// (single queries) and "reachlab_batch_seconds" / "reachlab_batch_pairs"
// (batches); requests and errors are counted per handler in
// "reachlab_http_requests_total" / "reachlab_http_errors_total". With
// the hot-pair cache enabled, every answered pair counts exactly once
// in "reachlab_cache_hits_total" or "reachlab_cache_misses_total", and
// "reachlab_query_pairs_total" counts the pairs themselves, so
// hits + misses == pairs always reconciles (cache counters are summed
// across epochs: each swap starts a fresh cache, CacheStats and /stats
// accumulate the retired ones' totals).
type QueryHandler struct {
	state atomic.Pointer[serveState]
	mux   *http.ServeMux
	obs   *obs.Registry

	// reloadMu serializes Swap/Reload so epochs increment one at a
	// time; queries never take it — they only load the state pointer.
	reloadMu sync.Mutex
	loader   func(ref string) (*Index, error)

	// updater, when set via EnableUpdates, serves POST /edges and the
	// /stats "updates" block (server_update.go). It is bound once at
	// startup, before the handler sees traffic.
	updater *Updater

	// Cache geometry, re-applied to the fresh cache of every epoch.
	cachePairs  int
	cacheShards int
	maxBatch    int
	maxJoin     int

	// Hit/miss totals of retired epochs' caches, folded in at swap
	// time so lifetime counters survive the swap.
	retiredHits   atomic.Int64
	retiredMisses atomic.Int64

	// Hot-path metric handles, resolved once.
	pairsTotal  *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	reloads     *obs.Counter
	epochGauge  *obs.Gauge
	queryHist   *obs.Histogram
	batchHist   *obs.Histogram
	batchPairs  *obs.Histogram
	pathHist    *obs.Histogram
	countHist   *obs.Histogram
	fromHist    *obs.Histogram
	fromTargets *obs.Histogram
	joinHist    *obs.Histogram
	joinResults *obs.Histogram
}

// serveState is one epoch of serving: an immutable index and the
// cache that holds only that index's answers. The pair is swapped
// atomically — a query that loaded epoch k runs entirely against
// epoch k's index and cache.
type serveState struct {
	idx   *Index
	cache *qcache.Cache
	epoch uint64
}

// ServeOptions configures NewQueryHandlerOpts.
type ServeOptions struct {
	// Obs receives request counters and latency histograms; nil
	// disables instrumentation (/metrics and /trace serve empty
	// documents).
	Obs *MetricsRegistry
	// CachePairs sizes the sharded hot-pair answer cache (rounded up
	// to a power of two). Zero disables the cache. Within one epoch
	// the index is immutable, so cached answers never need
	// invalidation; a reload swaps in a fresh cache with the index.
	CachePairs int
	// CacheShards is the shard count of the cache (default 64,
	// rounded up to a power of two).
	CacheShards int
	// MaxBatch caps the pair count of one /reach/batch request and the
	// per-list length of /reach/from and /reach/join; larger requests
	// are refused with 413. Default DefaultMaxBatch.
	MaxBatch int
	// MaxJoin caps the scanned cross product |sources|·|targets| of one
	// /reach/join request (after deduplication); larger joins are
	// refused with 413 before the stream starts. Default DefaultMaxJoin.
	MaxJoin int
	// Loader produces the next index for POST /admin/reload (and
	// drserve's SIGHUP): ref is the request's "ref" field, "" meaning
	// "the default source" (drserve reloads its -idx path). Nil
	// disables the reload endpoint (501).
	Loader func(ref string) (*Index, error)
}

// DefaultMaxBatch is the /reach/batch pair-count cap when
// ServeOptions.MaxBatch is zero.
const DefaultMaxBatch = 8192

// DefaultMaxJoin is the /reach/join cross-product cap when
// ServeOptions.MaxJoin is zero: a million scanned pairs keeps one
// analytics request under a few hundred milliseconds of label sweeps.
const DefaultMaxJoin = 1 << 20

// defaultCacheShards spreads slot traffic across enough shards that
// concurrent clients rarely contend on the same cache line.
const defaultCacheShards = 64

// EpochHeader is the response header carrying the serving epoch on
// /reach, /reach/batch, and /healthz. A fleet router records it from
// health probes and forwards it on proxied answers, so a client can
// tell which index version produced each response.
const EpochHeader = "X-Reachlab-Epoch"

// VerticesHeader carries the served index's vertex count on /healthz,
// so fleet probes learn the ID space without a /stats round trip.
const VerticesHeader = "X-Reachlab-Vertices"

// NewQueryHandler returns an http.Handler serving queries from idx,
// reporting to the process-wide default registry.
func NewQueryHandler(idx *Index) *QueryHandler {
	return NewQueryHandlerOpts(idx, ServeOptions{Obs: obs.Default})
}

// NewQueryHandlerObs is NewQueryHandler reporting to reg (nil disables
// instrumentation; /metrics and /trace then serve empty documents).
func NewQueryHandlerObs(idx *Index, reg *obs.Registry) *QueryHandler {
	return NewQueryHandlerOpts(idx, ServeOptions{Obs: reg})
}

// NewQueryHandlerOpts is the fully configurable constructor: cache
// size, batch cap, reload loader, and metrics registry.
func NewQueryHandlerOpts(idx *Index, opts ServeOptions) *QueryHandler {
	shards := opts.CacheShards
	if shards <= 0 {
		shards = defaultCacheShards
	}
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	maxJoin := opts.MaxJoin
	if maxJoin <= 0 {
		maxJoin = DefaultMaxJoin
	}
	reg := opts.Obs
	h := &QueryHandler{
		mux:         http.NewServeMux(),
		obs:         reg,
		loader:      opts.Loader,
		cachePairs:  opts.CachePairs,
		cacheShards: shards,
		maxBatch:    maxBatch,
		maxJoin:     maxJoin,

		pairsTotal:  reg.Counter("reachlab_query_pairs_total"),
		cacheHits:   reg.Counter("reachlab_cache_hits_total"),
		cacheMisses: reg.Counter("reachlab_cache_misses_total"),
		reloads:     reg.Counter("reachlab_reloads_total"),
		epochGauge:  reg.Gauge("reachlab_index_epoch"),
		queryHist:   reg.Histogram("reachlab_query_seconds", obs.LatencyBuckets),
		batchHist:   reg.Histogram("reachlab_batch_seconds", obs.LatencyBuckets),
		batchPairs:  reg.Histogram("reachlab_batch_pairs", obs.SizeBuckets),
		pathHist:    reg.Histogram("reachlab_path_seconds", obs.LatencyBuckets),
		countHist:   reg.Histogram("reachlab_count_seconds", obs.LatencyBuckets),
		fromHist:    reg.Histogram("reachlab_from_seconds", obs.LatencyBuckets),
		fromTargets: reg.Histogram("reachlab_from_targets", obs.SizeBuckets),
		joinHist:    reg.Histogram("reachlab_join_seconds", obs.LatencyBuckets),
		joinResults: reg.Histogram("reachlab_join_results", obs.SizeBuckets),
	}
	h.state.Store(&serveState{
		idx:   idx,
		cache: qcache.New(opts.CachePairs, shards),
		epoch: 1,
	})
	h.epochGauge.Set(1)
	h.mux.HandleFunc("GET /reach", h.reach)
	h.mux.HandleFunc("POST /reach/batch", h.reachBatch)
	h.mux.HandleFunc("GET /reach/path", h.reachPath)
	h.mux.HandleFunc("GET /reach/count", h.reachCount)
	h.mux.HandleFunc("POST /reach/from", h.reachFrom)
	h.mux.HandleFunc("POST /reach/join", h.reachJoin)
	h.mux.HandleFunc("POST /admin/reload", h.reload)
	h.mux.HandleFunc("POST /edges", h.edges)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := h.state.Load()
		w.Header().Set(EpochHeader, strconv.FormatUint(st.epoch, 10))
		w.Header().Set(VerticesHeader, strconv.Itoa(st.idx.NumVertices()))
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	obs.Mount(h.mux, reg)
	return h
}

// ServeHTTP implements http.Handler.
func (h *QueryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Swap atomically replaces the served index with idx under a fresh
// hot-pair cache, returning the new epoch. In-flight queries finish
// against whichever state they loaded; new queries see the new epoch
// immediately. Safe to call under full query load.
func (h *QueryHandler) Swap(idx *Index) uint64 {
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	return h.swapLocked(idx)
}

func (h *QueryHandler) swapLocked(idx *Index) uint64 {
	cur := h.state.Load()
	h.retiredHits.Add(cur.cache.Hits())
	h.retiredMisses.Add(cur.cache.Misses())
	next := &serveState{
		idx:   idx,
		cache: qcache.New(h.cachePairs, h.cacheShards),
		epoch: cur.epoch + 1,
	}
	h.state.Store(next)
	h.reloads.Inc()
	h.epochGauge.Set(int64(next.epoch))
	return next.epoch
}

// Reload invokes the configured Loader (ref "" = default source) and
// swaps the result in, returning the new epoch. The load runs in the
// caller's goroutine while the old epoch keeps serving; only the
// pointer flip is synchronized. Reloads are serialized — concurrent
// calls queue rather than load in parallel.
func (h *QueryHandler) Reload(ref string) (epoch uint64, vertices int, err error) {
	if h.loader == nil {
		return 0, 0, errors.New("reachlab: no reload loader configured")
	}
	h.reloadMu.Lock()
	defer h.reloadMu.Unlock()
	idx, err := h.loader(ref)
	if err != nil {
		return 0, 0, fmt.Errorf("reachlab: reload: %w", err)
	}
	if idx == nil {
		return 0, 0, errors.New("reachlab: reload loader returned nil index")
	}
	return h.swapLocked(idx), idx.NumVertices(), nil
}

// Epoch returns the current serving epoch (1 for a handler that has
// never reloaded).
func (h *QueryHandler) Epoch() uint64 { return h.state.Load().epoch }

// Index returns the currently served index.
func (h *QueryHandler) Index() *Index { return h.state.Load().idx }

// CacheStats returns the hot-pair cache's lifetime hit and miss
// counts, summed across every epoch served so far (zeros when the
// cache is disabled).
func (h *QueryHandler) CacheStats() (hits, misses int64) {
	return h.cacheTotals(h.state.Load())
}

// cacheTotals sums the lifetime cache counters for one state
// snapshot: the serving cache's live counts plus the totals folded in
// from retired epochs. Callers that already hold a snapshot must use
// this rather than CacheStats, which takes a fresh one — mixing two
// snapshots in one report tears across an epoch swap.
func (h *QueryHandler) cacheTotals(st *serveState) (hits, misses int64) {
	return h.retiredHits.Load() + st.cache.Hits(), h.retiredMisses.Load() + st.cache.Misses()
}

func vertexParam(st *serveState, r *http.Request, name string) (VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", raw, err)
	}
	if v < 0 || v >= st.idx.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", v, st.idx.NumVertices())
	}
	return VertexID(v), nil
}

// fail records an error for the handler and sends the HTTP error.
func (h *QueryHandler) fail(w http.ResponseWriter, handler, msg string, code int) {
	h.obs.Counter(obs.Label("reachlab_http_errors_total", "handler", handler)).Inc()
	http.Error(w, msg, code)
}

// answer resolves one validated pair through st's cache (when
// enabled) or the merge kernel, keeping the hit/miss counters exact:
// every pair consults the cache at most once and counts exactly once.
func (h *QueryHandler) answer(st *serveState, s, t VertexID) bool {
	if st.cache == nil {
		return st.idx.Reachable(s, t)
	}
	if ans, ok := st.cache.Get(int32(s), int32(t)); ok {
		h.cacheHits.Inc()
		return ans
	}
	h.cacheMisses.Inc()
	ans := st.idx.Reachable(s, t)
	st.cache.Put(int32(s), int32(t), ans)
	return ans
}

// setEpoch stamps the serving epoch on a response.
func setEpoch(w http.ResponseWriter, st *serveState) {
	w.Header().Set(EpochHeader, strconv.FormatUint(st.epoch, 10))
}

type reachResponse struct {
	S         VertexID `json:"s"`
	T         VertexID `json:"t"`
	Reachable bool     `json:"reachable"`
}

func (h *QueryHandler) reach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "reach")).Inc()
	// One state load per request: the whole query — validation, cache,
	// merge — runs against a single epoch.
	st := h.state.Load()
	s, err := vertexParam(st, r, "s")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	t, err := vertexParam(st, r, "t")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	h.pairsTotal.Inc()
	reachable := h.answer(st, s, t)
	h.queryHist.Observe(time.Since(start).Seconds())
	setEpoch(w, st)
	writeJSON(w, reachResponse{S: s, T: t, Reachable: reachable})
}

type batchRequest struct {
	Pairs [][2]int64 `json:"pairs"`
}

type batchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

// maxBatchBytes bounds the request body: the densest legal encoding
// of a pair ("[1,2],") is a handful of bytes, so 32 bytes per allowed
// pair plus slack rejects oversized bodies before they are buffered.
func (h *QueryHandler) maxBatchBytes() int64 {
	return int64(h.maxBatch)*32 + 4096
}

func (h *QueryHandler) reachBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "batch")).Inc()
	st := h.state.Load()
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBatchBytes())
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.fail(w, "batch", fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		h.fail(w, "batch", fmt.Sprintf("bad batch request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > h.maxBatch {
		h.fail(w, "batch", fmt.Sprintf("batch of %d pairs exceeds limit %d", len(req.Pairs), h.maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	n := int64(st.idx.NumVertices())
	pairs := make([]Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			h.fail(w, "batch", fmt.Sprintf("pair %d: vertex out of range [0, %d): [%d,%d]", i, n, p[0], p[1]),
				http.StatusBadRequest)
			return
		}
		pairs[i] = Pair{S: VertexID(p[0]), T: VertexID(p[1])}
	}
	h.pairsTotal.Add(int64(len(pairs)))

	results := make([]bool, len(pairs))
	if st.cache == nil {
		results = st.idx.ReachableBatch(pairs)
	} else {
		// Consult the cache per pair; resolve the misses as one batch
		// (keeping the source-locality win) and backfill the cache.
		missPairs := make([]Pair, 0, len(pairs))
		missPos := make([]int, 0, len(pairs))
		for i, p := range pairs {
			if ans, ok := st.cache.Get(int32(p.S), int32(p.T)); ok {
				h.cacheHits.Inc()
				results[i] = ans
				continue
			}
			h.cacheMisses.Inc()
			missPairs = append(missPairs, p)
			missPos = append(missPos, i)
		}
		for k, ans := range st.idx.ReachableBatch(missPairs) {
			p := missPairs[k]
			st.cache.Put(int32(p.S), int32(p.T), ans)
			results[missPos[k]] = ans
		}
	}
	h.batchHist.Observe(time.Since(start).Seconds())
	h.batchPairs.Observe(float64(len(pairs)))
	setEpoch(w, st)
	writeJSON(w, batchResponse{Count: len(results), Results: results})
}

type reloadRequest struct {
	Ref string `json:"ref"`
}

type reloadResponse struct {
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
}

// reload serves POST /admin/reload: load the next index via the
// configured Loader and swap it in. Queries keep flowing against the
// old epoch while the load runs; the response reports the new epoch.
func (h *QueryHandler) reload(w http.ResponseWriter, r *http.Request) {
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "reload")).Inc()
	if h.loader == nil {
		h.fail(w, "reload", "reload not configured on this replica", http.StatusNotImplemented)
		return
	}
	var req reloadRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	// An empty body means "reload the default source".
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		h.fail(w, "reload", fmt.Sprintf("bad reload request: %v", err), http.StatusBadRequest)
		return
	}
	epoch, vertices, err := h.Reload(req.Ref)
	if err != nil {
		h.fail(w, "reload", err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, reloadResponse{Epoch: epoch, Vertices: vertices})
}

func (h *QueryHandler) stats(w http.ResponseWriter, _ *http.Request) {
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "stats")).Inc()
	stSrv := h.state.Load()
	st := stSrv.idx.Stats()
	bs := stSrv.idx.BuildStats()
	// One snapshot for the whole document: CacheStats would load the
	// state a second time, and a reload between the two loads would
	// report epoch N's capacity with epoch N+1's hit counts.
	hits, misses := h.cacheTotals(stSrv)
	doc := map[string]any{
		"vertices": stSrv.idx.NumVertices(),
		// Epoch bookkeeping: index_epoch advances by one per reload,
		// index_vertices is the ID space of the index serving *now* —
		// together they let an operator confirm a reload landed.
		"index_epoch":    stSrv.epoch,
		"index_vertices": stSrv.idx.NumVertices(),
		"entries":        st.Entries,
		"bytes":          st.Bytes,
		"max_label_size": st.MaxLabelSize,
		"avg_label_size": st.AvgLabelSize,
		// Memory-bounded builds only (Options.LabelBudget): the cap and
		// how many vertices hit it per direction. All zero for full
		// indexes, whose misses never need a fallback.
		"label_budget":   st.LabelBudget,
		"overflowed_in":  st.OverflowedIn,
		"overflowed_out": st.OverflowedOut,
		"cache": map[string]any{
			"capacity": stSrv.cache.Capacity(),
			"shards":   stSrv.cache.Shards(),
			"hits":     hits,
			"misses":   misses,
		},
		// Construction cost and fault-handling activity. All zero for
		// an index loaded from disk (ReadIndex carries no build record).
		"build": map[string]any{
			"method":               string(bs.Method),
			"workers":              bs.Workers,
			"supersteps":           bs.Supersteps,
			"retries":              bs.Retries,
			"recoveries":           bs.Recoveries,
			"checkpoints":          bs.Checkpoints,
			"last_checkpoint_step": bs.LastCheckpointStep,
		},
	}
	// Mutation-path counters, present only when this replica accepts
	// POST /edges (server_update.go).
	if h.updater != nil {
		doc["updates"] = h.updater.Stats()
	}
	writeJSON(w, doc)
}

// writeJSON encodes v directly onto the wire. If encoding fails the
// status line and part of the body are already out, so sending
// http.Error would splice an error page into a half-written JSON
// document; log the failure and drop the connection output instead.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("reachlab: writing JSON response: %v", err)
	}
}

package reachlab

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// QueryHandler serves reachability queries from an index over HTTP —
// the paper's deployment: the distributed graph stays put, the
// compact index answers queries from one machine (§I). cmd/drserve
// wraps it into a standalone server.
//
// Endpoints:
//
//	GET /reach?s=<id>&t=<id>   → {"s":3,"t":17,"reachable":true}
//	GET /stats                 → index statistics
//	GET /healthz               → 200 ok
type QueryHandler struct {
	idx *Index
	mux *http.ServeMux
}

// NewQueryHandler returns an http.Handler serving queries from idx.
func NewQueryHandler(idx *Index) *QueryHandler {
	h := &QueryHandler{idx: idx, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /reach", h.reach)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *QueryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *QueryHandler) vertex(r *http.Request, name string) (VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", raw, err)
	}
	if v < 0 || v >= h.idx.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", v, h.idx.NumVertices())
	}
	return VertexID(v), nil
}

func (h *QueryHandler) reach(w http.ResponseWriter, r *http.Request) {
	s, err := h.vertex(r, "s")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t, err := h.vertex(r, "t")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"s":         s,
		"t":         t,
		"reachable": h.idx.Reachable(s, t),
	})
}

func (h *QueryHandler) stats(w http.ResponseWriter, _ *http.Request) {
	st := h.idx.Stats()
	bs := h.idx.BuildStats()
	writeJSON(w, map[string]any{
		"vertices":       h.idx.NumVertices(),
		"entries":        st.Entries,
		"bytes":          st.Bytes,
		"max_label_size": st.MaxLabelSize,
		"avg_label_size": st.AvgLabelSize,
		// Construction cost and fault-handling activity. All zero for
		// an index loaded from disk (ReadIndex carries no build record).
		"build": map[string]any{
			"method":               string(bs.Method),
			"workers":              bs.Workers,
			"supersteps":           bs.Supersteps,
			"retries":              bs.Retries,
			"recoveries":           bs.Recoveries,
			"checkpoints":          bs.Checkpoints,
			"last_checkpoint_step": bs.LastCheckpointStep,
		},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

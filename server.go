package reachlab

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/qcache"
)

// QueryHandler serves reachability queries from an index over HTTP —
// the paper's deployment: the distributed graph stays put, the
// compact index answers queries from one machine (§I). cmd/drserve
// wraps it into a standalone server.
//
// Endpoints:
//
//	GET  /reach?s=<id>&t=<id>  → {"s":3,"t":17,"reachable":true}
//	POST /reach/batch          → {"count":2,"results":[true,false]}
//	                             body: {"pairs":[[3,17],[5,9]]}
//	GET  /stats                → index statistics
//	GET  /healthz              → 200 ok
//	GET  /metrics              → Prometheus text exposition
//	GET  /trace                → superstep traces (JSON)
//	GET  /debug/pprof/         → net/http/pprof profiles
//
// Per-query latency lands in the "reachlab_query_seconds" histogram
// (single queries) and "reachlab_batch_seconds" / "reachlab_batch_pairs"
// (batches); requests and errors are counted per handler in
// "reachlab_http_requests_total" / "reachlab_http_errors_total". With
// the hot-pair cache enabled, every answered pair counts exactly once
// in "reachlab_cache_hits_total" or "reachlab_cache_misses_total", and
// "reachlab_query_pairs_total" counts the pairs themselves, so
// hits + misses == pairs always reconciles.
type QueryHandler struct {
	idx      *Index
	mux      *http.ServeMux
	obs      *obs.Registry
	cache    *qcache.Cache
	maxBatch int

	// Hot-path metric handles, resolved once.
	pairsTotal  *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	queryHist   *obs.Histogram
	batchHist   *obs.Histogram
	batchPairs  *obs.Histogram
}

// ServeOptions configures NewQueryHandlerOpts.
type ServeOptions struct {
	// Obs receives request counters and latency histograms; nil
	// disables instrumentation (/metrics and /trace serve empty
	// documents).
	Obs *MetricsRegistry
	// CachePairs sizes the sharded hot-pair answer cache (rounded up
	// to a power of two). Zero disables the cache. The index is
	// immutable, so cached answers never need invalidation.
	CachePairs int
	// CacheShards is the shard count of the cache (default 64,
	// rounded up to a power of two).
	CacheShards int
	// MaxBatch caps the pair count of one /reach/batch request;
	// larger batches are refused with 413. Default DefaultMaxBatch.
	MaxBatch int
}

// DefaultMaxBatch is the /reach/batch pair-count cap when
// ServeOptions.MaxBatch is zero.
const DefaultMaxBatch = 8192

// defaultCacheShards spreads slot traffic across enough shards that
// concurrent clients rarely contend on the same cache line.
const defaultCacheShards = 64

// NewQueryHandler returns an http.Handler serving queries from idx,
// reporting to the process-wide default registry.
func NewQueryHandler(idx *Index) *QueryHandler {
	return NewQueryHandlerOpts(idx, ServeOptions{Obs: obs.Default})
}

// NewQueryHandlerObs is NewQueryHandler reporting to reg (nil disables
// instrumentation; /metrics and /trace then serve empty documents).
func NewQueryHandlerObs(idx *Index, reg *obs.Registry) *QueryHandler {
	return NewQueryHandlerOpts(idx, ServeOptions{Obs: reg})
}

// NewQueryHandlerOpts is the fully configurable constructor: cache
// size, batch cap, and metrics registry.
func NewQueryHandlerOpts(idx *Index, opts ServeOptions) *QueryHandler {
	shards := opts.CacheShards
	if shards <= 0 {
		shards = defaultCacheShards
	}
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	reg := opts.Obs
	h := &QueryHandler{
		idx:      idx,
		mux:      http.NewServeMux(),
		obs:      reg,
		cache:    qcache.New(opts.CachePairs, shards),
		maxBatch: maxBatch,

		pairsTotal:  reg.Counter("reachlab_query_pairs_total"),
		cacheHits:   reg.Counter("reachlab_cache_hits_total"),
		cacheMisses: reg.Counter("reachlab_cache_misses_total"),
		queryHist:   reg.Histogram("reachlab_query_seconds", obs.LatencyBuckets),
		batchHist:   reg.Histogram("reachlab_batch_seconds", obs.LatencyBuckets),
		batchPairs:  reg.Histogram("reachlab_batch_pairs", obs.SizeBuckets),
	}
	h.mux.HandleFunc("GET /reach", h.reach)
	h.mux.HandleFunc("POST /reach/batch", h.reachBatch)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	obs.Mount(h.mux, reg)
	return h
}

// ServeHTTP implements http.Handler.
func (h *QueryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// CacheStats returns the hot-pair cache's lifetime hit and miss
// counts (zeros when the cache is disabled).
func (h *QueryHandler) CacheStats() (hits, misses int64) {
	return h.cache.Hits(), h.cache.Misses()
}

func (h *QueryHandler) vertex(r *http.Request, name string) (VertexID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", raw, err)
	}
	if v < 0 || v >= h.idx.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0, %d)", v, h.idx.NumVertices())
	}
	return VertexID(v), nil
}

// fail records an error for the handler and sends the HTTP error.
func (h *QueryHandler) fail(w http.ResponseWriter, handler, msg string, code int) {
	h.obs.Counter(obs.Label("reachlab_http_errors_total", "handler", handler)).Inc()
	http.Error(w, msg, code)
}

// answer resolves one validated pair through the cache (when enabled)
// or the merge kernel, keeping the hit/miss counters exact: every pair
// consults the cache at most once and counts exactly once.
func (h *QueryHandler) answer(s, t VertexID) bool {
	if h.cache == nil {
		return h.idx.Reachable(s, t)
	}
	if ans, ok := h.cache.Get(int32(s), int32(t)); ok {
		h.cacheHits.Inc()
		return ans
	}
	h.cacheMisses.Inc()
	ans := h.idx.Reachable(s, t)
	h.cache.Put(int32(s), int32(t), ans)
	return ans
}

type reachResponse struct {
	S         VertexID `json:"s"`
	T         VertexID `json:"t"`
	Reachable bool     `json:"reachable"`
}

func (h *QueryHandler) reach(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "reach")).Inc()
	s, err := h.vertex(r, "s")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	t, err := h.vertex(r, "t")
	if err != nil {
		h.fail(w, "reach", err.Error(), http.StatusBadRequest)
		return
	}
	h.pairsTotal.Inc()
	reachable := h.answer(s, t)
	h.queryHist.Observe(time.Since(start).Seconds())
	writeJSON(w, reachResponse{S: s, T: t, Reachable: reachable})
}

type batchRequest struct {
	Pairs [][2]int64 `json:"pairs"`
}

type batchResponse struct {
	Count   int    `json:"count"`
	Results []bool `json:"results"`
}

// maxBatchBytes bounds the request body: the densest legal encoding
// of a pair ("[1,2],") is a handful of bytes, so 32 bytes per allowed
// pair plus slack rejects oversized bodies before they are buffered.
func (h *QueryHandler) maxBatchBytes() int64 {
	return int64(h.maxBatch)*32 + 4096
}

func (h *QueryHandler) reachBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "batch")).Inc()
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBatchBytes())
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.fail(w, "batch", fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		h.fail(w, "batch", fmt.Sprintf("bad batch request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Pairs) > h.maxBatch {
		h.fail(w, "batch", fmt.Sprintf("batch of %d pairs exceeds limit %d", len(req.Pairs), h.maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	n := int64(h.idx.NumVertices())
	pairs := make([]Pair, len(req.Pairs))
	for i, p := range req.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			h.fail(w, "batch", fmt.Sprintf("pair %d: vertex out of range [0, %d): [%d,%d]", i, n, p[0], p[1]),
				http.StatusBadRequest)
			return
		}
		pairs[i] = Pair{S: VertexID(p[0]), T: VertexID(p[1])}
	}
	h.pairsTotal.Add(int64(len(pairs)))

	results := make([]bool, len(pairs))
	if h.cache == nil {
		results = h.idx.ReachableBatch(pairs)
	} else {
		// Consult the cache per pair; resolve the misses as one batch
		// (keeping the source-locality win) and backfill the cache.
		missPairs := make([]Pair, 0, len(pairs))
		missPos := make([]int, 0, len(pairs))
		for i, p := range pairs {
			if ans, ok := h.cache.Get(int32(p.S), int32(p.T)); ok {
				h.cacheHits.Inc()
				results[i] = ans
				continue
			}
			h.cacheMisses.Inc()
			missPairs = append(missPairs, p)
			missPos = append(missPos, i)
		}
		for k, ans := range h.idx.ReachableBatch(missPairs) {
			p := missPairs[k]
			h.cache.Put(int32(p.S), int32(p.T), ans)
			results[missPos[k]] = ans
		}
	}
	h.batchHist.Observe(time.Since(start).Seconds())
	h.batchPairs.Observe(float64(len(pairs)))
	writeJSON(w, batchResponse{Count: len(results), Results: results})
}

func (h *QueryHandler) stats(w http.ResponseWriter, _ *http.Request) {
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "stats")).Inc()
	st := h.idx.Stats()
	bs := h.idx.BuildStats()
	writeJSON(w, map[string]any{
		"vertices":       h.idx.NumVertices(),
		"entries":        st.Entries,
		"bytes":          st.Bytes,
		"max_label_size": st.MaxLabelSize,
		"avg_label_size": st.AvgLabelSize,
		"cache": map[string]any{
			"capacity": h.cache.Capacity(),
			"shards":   h.cache.Shards(),
			"hits":     h.cache.Hits(),
			"misses":   h.cache.Misses(),
		},
		// Construction cost and fault-handling activity. All zero for
		// an index loaded from disk (ReadIndex carries no build record).
		"build": map[string]any{
			"method":               string(bs.Method),
			"workers":              bs.Workers,
			"supersteps":           bs.Supersteps,
			"retries":              bs.Retries,
			"recoveries":           bs.Recoveries,
			"checkpoints":          bs.Checkpoints,
			"last_checkpoint_step": bs.LastCheckpointStep,
		},
	})
}

// writeJSON encodes v directly onto the wire. If encoding fails the
// status line and part of the body are already out, so sending
// http.Error would splice an error page into a half-written JSON
// document; log the failure and drop the connection output instead.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("reachlab: writing JSON response: %v", err)
	}
}

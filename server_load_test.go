package reachlab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
)

// buildTestServer builds an index over a seeded cyclic graph and
// serves it with the hot-pair cache enabled, returning the pieces the
// load tests need.
func buildTestServer(t *testing.T, cachePairs, maxBatch int) (*Graph, *Index, *QueryHandler, *MetricsRegistry, *httptest.Server) {
	t.Helper()
	g := randomCyclicGraph(60, 200, 3)
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	h := NewQueryHandlerOpts(idx, ServeOptions{Obs: reg, CachePairs: cachePairs, MaxBatch: maxBatch})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return g, idx, h, reg, srv
}

// TestQueryHandlerConcurrent hammers the single and batch endpoints
// with the cache enabled from many goroutines (run under -race by
// make check and CI). Every answer must match the BFS oracle, and
// afterwards the cache counters must reconcile exactly:
// hits + misses == pairs asked.
func TestQueryHandlerConcurrent(t *testing.T) {
	g, _, h, reg, srv := buildTestServer(t, 4096, DefaultMaxBatch)
	n := g.NumVertices()

	const workers = 8
	const perWorker = 60 // alternating single / batch requests
	const batchLen = 16
	var wg sync.WaitGroup
	var pairsSent atomic.Int64
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := srv.Client()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					s, d := rng.Intn(n), rng.Intn(n)
					resp, err := client.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", srv.URL, s, d))
					if err != nil {
						errs <- err
						return
					}
					var body struct {
						Reachable bool `json:"reachable"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					pairsSent.Add(1)
					if want := g.ReachableBFS(VertexID(s), VertexID(d)); body.Reachable != want {
						errs <- fmt.Errorf("reach(%d,%d) = %v, oracle says %v", s, d, body.Reachable, want)
						return
					}
					continue
				}
				req := struct {
					Pairs [][2]int64 `json:"pairs"`
				}{}
				for k := 0; k < batchLen; k++ {
					req.Pairs = append(req.Pairs, [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))})
				}
				raw, _ := json.Marshal(req)
				resp, err := client.Post(srv.URL+"/reach/batch", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				var body struct {
					Count   int    `json:"count"`
					Results []bool `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				pairsSent.Add(int64(len(req.Pairs)))
				if body.Count != batchLen || len(body.Results) != batchLen {
					errs <- fmt.Errorf("batch answered %d/%d results", body.Count, len(body.Results))
					return
				}
				for k, p := range req.Pairs {
					if want := g.ReachableBFS(VertexID(p[0]), VertexID(p[1])); body.Results[k] != want {
						errs <- fmt.Errorf("batch reach(%d,%d) = %v, oracle says %v", p[0], p[1], body.Results[k], want)
						return
					}
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Counter reconciliation: every answered pair consulted the cache
	// exactly once, so hits + misses must equal the pairs counter and
	// our own count of what was sent.
	hits := reg.CounterValue("reachlab_cache_hits_total")
	misses := reg.CounterValue("reachlab_cache_misses_total")
	pairs := reg.CounterValue("reachlab_query_pairs_total")
	if pairs != pairsSent.Load() {
		t.Errorf("server counted %d pairs, clients sent %d", pairs, pairsSent.Load())
	}
	if hits+misses != pairs {
		t.Errorf("cache counters do not reconcile: hits %d + misses %d != pairs %d", hits, misses, pairs)
	}
	if hits == 0 {
		t.Error("expected cache hits over repeated 60-vertex traffic")
	}
	if ch, cm := h.CacheStats(); ch != hits || cm != misses {
		t.Errorf("CacheStats() = (%d,%d), obs counters say (%d,%d)", ch, cm, hits, misses)
	}
}

// TestLoadgenSoakHTTP proves the loadgen harness end to end: the
// bench.RunLoadgen clients drive the real handler over HTTP in soak
// mode with answer verification, and must come back with zero errors
// and sane accounting.
func TestLoadgenSoakHTTP(t *testing.T) {
	g, _, _, reg, srv := buildTestServer(t, 2048, DefaultMaxBatch)
	n := g.NumVertices()

	const batchLen = 8
	client := func(pairs []graph.Edge) error {
		req := struct {
			Pairs [][2]int64 `json:"pairs"`
		}{Pairs: make([][2]int64, len(pairs))}
		for i, p := range pairs {
			req.Pairs[i] = [2]int64{int64(p.U), int64(p.V)}
		}
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := srv.Client().Post(srv.URL+"/reach/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var body struct {
			Results []bool `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if len(body.Results) != len(pairs) {
			return fmt.Errorf("%d answers for %d pairs", len(body.Results), len(pairs))
		}
		for i, p := range pairs {
			if body.Results[i] != g.ReachableBFS(p.U, p.V) {
				return fmt.Errorf("reach(%d,%d): server says %v", p.U, p.V, body.Results[i])
			}
		}
		return nil
	}

	res := bench.RunLoadgen(bench.LoadgenOptions{
		Clients:   6,
		Duration:  300 * time.Millisecond,
		BatchSize: batchLen,
		Vertices:  n,
		ZipfS:     1.2,
		Seed:      9,
	}, client)

	if res.Errors != 0 {
		t.Fatalf("soak run reported %d errors over %d requests", res.Errors, res.Requests)
	}
	if res.Requests == 0 || res.Pairs != res.Requests*batchLen {
		t.Fatalf("accounting off: %d requests, %d pairs", res.Requests, res.Pairs)
	}
	if res.QPS <= 0 || res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("implausible measurements: %+v", res)
	}
	hits := reg.CounterValue("reachlab_cache_hits_total")
	misses := reg.CounterValue("reachlab_cache_misses_total")
	if hits+misses != res.Pairs {
		t.Errorf("cache counters %d+%d do not reconcile with %d pairs", hits, misses, res.Pairs)
	}
}

// TestBatchEndpointErrors covers the batch endpoint's refusal paths:
// malformed JSON, vertices outside the index's ID space, batches over
// the pair limit, and bodies over the byte limit — plus the mid-stream
// writer failure discipline writeJSON inherits from the single-query
// path (no status forced after bytes are on the wire).
func TestBatchEndpointErrors(t *testing.T) {
	g := randomCyclicGraph(20, 50, 11)
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 4
	h := NewQueryHandlerOpts(idx, ServeOptions{Obs: NewMetricsRegistry(), CachePairs: 64, MaxBatch: maxBatch})

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/reach/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	t.Run("malformed-json", func(t *testing.T) {
		if rec := post(`{"pairs": [[0, 1], [2`); rec.Code != http.StatusBadRequest {
			t.Errorf("truncated JSON: status %d, want 400", rec.Code)
		}
		if rec := post(`not json at all`); rec.Code != http.StatusBadRequest {
			t.Errorf("garbage body: status %d, want 400", rec.Code)
		}
	})

	t.Run("wrong-method", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/reach/batch", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET /reach/batch: status %d, want 405", rec.Code)
		}
	})

	t.Run("out-of-range-vertex", func(t *testing.T) {
		for _, body := range []string{
			`{"pairs": [[0, 99]]}`,      // target past the ID space
			`{"pairs": [[-1, 0]]}`,      // negative source
			`{"pairs": [[0,1],[20,0]]}`, // n itself is out of range
		} {
			rec := post(body)
			if rec.Code != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400", body, rec.Code)
			}
		}
	})

	t.Run("too-many-pairs", func(t *testing.T) {
		body := `{"pairs": [` + strings.TrimSuffix(strings.Repeat("[0,1],", maxBatch+1), ",") + `]}`
		if rec := post(body); rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%d pairs over limit %d: status %d, want 413", maxBatch+1, maxBatch, rec.Code)
		}
	})

	t.Run("oversized-body", func(t *testing.T) {
		// Valid JSON padded with whitespace past the byte cap: the
		// MaxBytesReader must trip while the decoder is still scanning.
		pad := strings.Repeat(" ", int(h.maxBatchBytes())+64)
		if rec := post(`{"pairs": [[0, 1]]` + pad + `}`); rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body: status %d, want 413", rec.Code)
		}
	})

	t.Run("valid-still-works", func(t *testing.T) {
		rec := post(`{"pairs": [[0, 1], [1, 1]]}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("valid batch: status %d, body %s", rec.Code, rec.Body.String())
		}
		var body struct {
			Count   int    `json:"count"`
			Results []bool `json:"results"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Count != 2 || len(body.Results) != 2 || !body.Results[1] {
			t.Fatalf("valid batch: %+v (reach(1,1) must be true)", body)
		}
	})

	t.Run("mid-stream-writer-failure", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/reach/batch",
			strings.NewReader(`{"pairs": [[0, 0]]}`))
		w := &failingWriter{header: make(http.Header)}
		h.ServeHTTP(w, req)
		if w.code != 0 {
			t.Errorf("handler forced status %d after a mid-stream write failure", w.code)
		}
	})
}

// TestLoadgenRequestBudget: without a duration the harness fires the
// request budget split across clients, deterministically per seed.
func TestLoadgenRequestBudget(t *testing.T) {
	var calls atomic.Int64
	res := bench.RunLoadgen(bench.LoadgenOptions{
		Clients:  4,
		Requests: 100,
		Vertices: 50,
		ZipfS:    1.1,
		Seed:     3,
	}, func(pairs []graph.Edge) error {
		calls.Add(1)
		return nil
	})
	if res.Requests != 100 || calls.Load() != 100 {
		t.Fatalf("requests = %d (callbacks %d), want 100", res.Requests, calls.Load())
	}
	if res.Pairs != 100 {
		t.Fatalf("pairs = %d, want 100 at batch size 1", res.Pairs)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

package reachlab

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"slices"
	"time"

	"repro/internal/obs"
)

// Rich-query handlers: GET /reach/path, GET /reach/count,
// POST /reach/from, POST /reach/join. Cacheability differs per
// endpoint (DESIGN.md §15): path and from are pair queries, so they
// consult the hot-pair cache and count into reachlab_query_pairs_total
// — the hits+misses == pairs reconciliation covers them. A path answer
// caches only its reachable bit (the path itself is cheap to
// rediscover and large to store). count is a per-source aggregate, not
// a pair, and join is analytics traffic whose cross product would
// evict the interactive working set — neither touches the cache or the
// pair counters.

type pathResponse struct {
	S         VertexID   `json:"s"`
	T         VertexID   `json:"t"`
	Reachable bool       `json:"reachable"`
	Path      []VertexID `json:"path,omitempty"`
}

func (h *QueryHandler) reachPath(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "path")).Inc()
	st := h.state.Load()
	s, err := vertexParam(st, r, "s")
	if err != nil {
		h.fail(w, "path", err.Error(), http.StatusBadRequest)
		return
	}
	t, err := vertexParam(st, r, "t")
	if err != nil {
		h.fail(w, "path", err.Error(), http.StatusBadRequest)
		return
	}
	if !st.idx.HasGraph() {
		// Refused before any pair accounting: a replica serving a bare
		// index file answers booleans but cannot walk edges.
		h.fail(w, "path", "witness paths unavailable: no graph attached to this index", http.StatusNotImplemented)
		return
	}
	h.pairsTotal.Inc()
	reachable := h.answer(st, s, t)
	resp := pathResponse{S: s, T: t, Reachable: reachable}
	if reachable {
		path, err := st.idx.WitnessPath(s, t)
		if err != nil {
			h.fail(w, "path", err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Path = path
	}
	h.pathHist.Observe(time.Since(start).Seconds())
	setEpoch(w, st)
	writeJSON(w, resp)
}

type countResponse struct {
	S     VertexID `json:"s"`
	Count int      `json:"count"`
}

func (h *QueryHandler) reachCount(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "count")).Inc()
	st := h.state.Load()
	s, err := vertexParam(st, r, "s")
	if err != nil {
		h.fail(w, "count", err.Error(), http.StatusBadRequest)
		return
	}
	count := st.idx.ReachableSetSize(s)
	h.countHist.Observe(time.Since(start).Seconds())
	setEpoch(w, st)
	writeJSON(w, countResponse{S: s, Count: count})
}

type fromRequest struct {
	S       int64   `json:"s"`
	Targets []int64 `json:"targets"`
}

type fromResponse struct {
	S       VertexID `json:"s"`
	Count   int      `json:"count"`
	Results []bool   `json:"results"`
}

func (h *QueryHandler) reachFrom(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "from")).Inc()
	st := h.state.Load()
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBatchBytes())
	var req fromRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.fail(w, "from", fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		h.fail(w, "from", fmt.Sprintf("bad from request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Targets) > h.maxBatch {
		h.fail(w, "from", fmt.Sprintf("%d targets exceeds limit %d", len(req.Targets), h.maxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}
	n := int64(st.idx.NumVertices())
	if req.S < 0 || req.S >= n {
		h.fail(w, "from", fmt.Sprintf("source %d out of range [0, %d)", req.S, n), http.StatusBadRequest)
		return
	}
	s := VertexID(req.S)
	targets := make([]VertexID, len(req.Targets))
	for i, t := range req.Targets {
		if t < 0 || t >= n {
			h.fail(w, "from", fmt.Sprintf("target %d: vertex out of range [0, %d): %d", i, n, t),
				http.StatusBadRequest)
			return
		}
		targets[i] = VertexID(t)
	}
	h.pairsTotal.Add(int64(len(targets)))

	results := make([]bool, len(targets))
	if st.cache == nil {
		results = st.idx.ReachableFrom(s, targets)
	} else {
		// Consult the cache per target; sweep the misses in one
		// ReachableFrom (keeping the single out-label load) and backfill.
		missTargets := make([]VertexID, 0, len(targets))
		missPos := make([]int, 0, len(targets))
		for i, t := range targets {
			if ans, ok := st.cache.Get(int32(s), int32(t)); ok {
				h.cacheHits.Inc()
				results[i] = ans
				continue
			}
			h.cacheMisses.Inc()
			missTargets = append(missTargets, t)
			missPos = append(missPos, i)
		}
		for k, ans := range st.idx.ReachableFrom(s, missTargets) {
			st.cache.Put(int32(s), int32(missTargets[k]), ans)
			results[missPos[k]] = ans
		}
	}
	count := 0
	for _, ok := range results {
		if ok {
			count++
		}
	}
	h.fromHist.Observe(time.Since(start).Seconds())
	h.fromTargets.Observe(float64(len(targets)))
	setEpoch(w, st)
	writeJSON(w, fromResponse{S: s, Count: count, Results: results})
}

type joinRequest struct {
	Sources []int64 `json:"sources"`
	Targets []int64 `json:"targets"`
}

// joinPair is one streamed result line; joinSummary is the terminal
// line a complete stream always ends with — its absence tells the
// client the stream was truncated.
type joinPair struct {
	S VertexID `json:"s"`
	T VertexID `json:"t"`
}

type joinSummary struct {
	Done    bool `json:"done"`
	Count   int  `json:"count"`
	Scanned int  `json:"scanned"`
}

// reachJoin streams the reachable (s, t) pairs of sources × targets as
// NDJSON, one {"s":..,"t":..} object per line in ascending (s, t)
// order, terminated by a {"done":true,...} summary line. Both input
// lists are deduplicated and sorted before scanning; every refusal
// (bad body, list or cross-product over the cap) happens before the
// first body byte, so a non-200 is always a clean JSON error and a 200
// is always NDJSON. A mid-stream write failure (client went away) is
// logged and dropped — the missing summary line marks the truncation.
func (h *QueryHandler) reachJoin(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "join")).Inc()
	st := h.state.Load()
	// Two lists instead of batch's one: allow twice the body.
	r.Body = http.MaxBytesReader(w, r.Body, 2*h.maxBatchBytes())
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			h.fail(w, "join", fmt.Sprintf("request body over %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		h.fail(w, "join", fmt.Sprintf("bad join request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Sources) > h.maxBatch || len(req.Targets) > h.maxBatch {
		h.fail(w, "join", fmt.Sprintf("join lists of %d×%d exceed per-list limit %d",
			len(req.Sources), len(req.Targets), h.maxBatch), http.StatusRequestEntityTooLarge)
		return
	}
	n := int64(st.idx.NumVertices())
	srcs, err := joinVertices(req.Sources, n)
	if err != nil {
		h.fail(w, "join", "sources: "+err.Error(), http.StatusBadRequest)
		return
	}
	tgts, err := joinVertices(req.Targets, n)
	if err != nil {
		h.fail(w, "join", "targets: "+err.Error(), http.StatusBadRequest)
		return
	}
	scanned := len(srcs) * len(tgts)
	if scanned > h.maxJoin {
		h.fail(w, "join", fmt.Sprintf("join scans %d×%d=%d pairs, over limit %d",
			len(srcs), len(tgts), scanned, h.maxJoin), http.StatusRequestEntityTooLarge)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	setEpoch(w, st)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	for _, s := range srcs {
		// One sweep per source: the out-label loads once for the whole
		// target list, the join's entire locality win.
		row := st.idx.ReachableFrom(s, tgts)
		for i, ok := range row {
			if !ok {
				continue
			}
			count++
			if err := enc.Encode(joinPair{S: s, T: tgts[i]}); err != nil {
				log.Printf("reachlab: join stream truncated: %v", err)
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(joinSummary{Done: true, Count: count, Scanned: scanned}); err != nil {
		log.Printf("reachlab: join summary dropped: %v", err)
		return
	}
	h.joinHist.Observe(time.Since(start).Seconds())
	h.joinResults.Observe(float64(count))
}

// joinVertices validates one join list against the ID space and
// returns it sorted with duplicates removed.
func joinVertices(raw []int64, n int64) ([]VertexID, error) {
	vs := make([]VertexID, len(raw))
	for i, v := range raw {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("entry %d: vertex out of range [0, %d): %d", i, n, v)
		}
		vs[i] = VertexID(v)
	}
	slices.Sort(vs)
	return slices.Compact(vs), nil
}

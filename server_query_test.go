package reachlab

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// HTTP-level suite for the rich-query endpoints: answers vs the BFS
// oracle, epoch headers, cacheability split, error paths, a fuzz
// target on the join decoder, and a -race hammer mixing all six
// endpoints across a mid-burst epoch swap.

// oracleRow computes g's reachability row from s by BFS.
func oracleRow(g *Graph, s VertexID, targets []int64) []bool {
	out := make([]bool, len(targets))
	for i, t := range targets {
		out[i] = g.ReachableBFS(s, VertexID(t))
	}
	return out
}

func oracleSetSize(g *Graph, s VertexID) int {
	count := 0
	for t := 0; t < g.NumVertices(); t++ {
		if g.ReachableBFS(s, VertexID(t)) {
			count++
		}
	}
	return count
}

// decodeNDJoin parses a /reach/join NDJSON body. done reports whether
// the terminal summary arrived — a complete stream always has it.
func decodeNDJoin(t *testing.T, body *bufio.Scanner) (pairs [][2]int64, count, scanned int, done bool) {
	t.Helper()
	for body.Scan() {
		line := strings.TrimSpace(body.Text())
		if line == "" {
			continue
		}
		if done {
			t.Fatalf("join line after the done summary: %s", line)
		}
		var rec struct {
			S, T    *int64
			Done    bool
			Count   int
			Scanned int
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad join line %q: %v", line, err)
		}
		if rec.Done {
			done, count, scanned = true, rec.Count, rec.Scanned
			continue
		}
		if rec.S == nil || rec.T == nil {
			t.Fatalf("join line with neither pair nor summary: %s", line)
		}
		pairs = append(pairs, [2]int64{*rec.S, *rec.T})
	}
	if err := body.Err(); err != nil {
		t.Fatal(err)
	}
	return pairs, count, scanned, done
}

func TestRichEndpointsMatchOracle(t *testing.T) {
	g, _, _, reg, srv := buildTestServer(t, 1024, DefaultMaxBatch)
	n := g.NumVertices()
	client := srv.Client()

	// Witness paths: reachable iff the oracle says so; every returned
	// path walks real edges between the right endpoints.
	for k := 0; k < 60; k++ {
		s, d := (k*7)%n, (k*13+5)%n
		resp, err := client.Get(fmt.Sprintf("%s/reach/path?s=%d&t=%d", srv.URL, s, d))
		if err != nil {
			t.Fatal(err)
		}
		if e := resp.Header.Get(EpochHeader); e != "1" {
			t.Fatalf("path epoch header %q, want \"1\"", e)
		}
		var pr struct {
			S         int64   `json:"s"`
			T         int64   `json:"t"`
			Reachable bool    `json:"reachable"`
			Path      []int64 `json:"path"`
		}
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := g.ReachableBFS(VertexID(s), VertexID(d))
		if pr.Reachable != want {
			t.Fatalf("path(%d,%d).reachable = %v, oracle says %v", s, d, pr.Reachable, want)
		}
		if !want {
			if pr.Path != nil {
				t.Fatalf("path(%d,%d) carried a path for an unreachable pair: %v", s, d, pr.Path)
			}
			continue
		}
		if len(pr.Path) == 0 || pr.Path[0] != int64(s) || pr.Path[len(pr.Path)-1] != int64(d) {
			t.Fatalf("path(%d,%d) endpoints wrong: %v", s, d, pr.Path)
		}
		for i := 0; i+1 < len(pr.Path); i++ {
			hop := false
			for _, w := range g.OutNeighbors(VertexID(pr.Path[i])) {
				if int64(w) == pr.Path[i+1] {
					hop = true
					break
				}
			}
			if !hop {
				t.Fatalf("path(%d,%d) hop %d→%d is not an edge", s, d, pr.Path[i], pr.Path[i+1])
			}
		}
	}

	// Set-size counts.
	for s := 0; s < n; s += 9 {
		resp, err := client.Get(fmt.Sprintf("%s/reach/count?s=%d", srv.URL, s))
		if err != nil {
			t.Fatal(err)
		}
		var cr struct {
			Count int `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&cr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleSetSize(g, VertexID(s)); cr.Count != want {
			t.Fatalf("count(%d) = %d, oracle says %d", s, cr.Count, want)
		}
	}

	// One-source sweeps, duplicates included.
	targets := []int64{0, 5, 5, 17, 42, 59, 1}
	for s := 0; s < n; s += 11 {
		raw, _ := json.Marshal(map[string]any{"s": s, "targets": targets})
		resp, err := client.Post(srv.URL+"/reach/from", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var fr struct {
			Count   int    `json:"count"`
			Results []bool `json:"results"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := oracleRow(g, VertexID(s), targets)
		wantCount := 0
		for _, ok := range want {
			if ok {
				wantCount++
			}
		}
		if fr.Count != wantCount || len(fr.Results) != len(targets) {
			t.Fatalf("from(%d) count=%d len=%d, want %d/%d", s, fr.Count, len(fr.Results), wantCount, len(targets))
		}
		for i := range want {
			if fr.Results[i] != want[i] {
				t.Fatalf("from(%d) results[%d]=%v, oracle says %v", s, i, fr.Results[i], want[i])
			}
		}
	}

	// Join: pairs == per-pair oracle over the deduplicated sorted
	// lists, metamorphic with /reach point answers.
	sources := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	tgts := []int64{8, 2, 8, 18, 28, 45}
	raw, _ := json.Marshal(map[string]any{"sources": sources, "targets": tgts})
	resp, err := client.Post(srv.URL+"/reach/join", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("join status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if e := resp.Header.Get(EpochHeader); e != "1" {
		t.Fatalf("join epoch header %q, want \"1\"", e)
	}
	pairs, count, scanned, done := decodeNDJoin(t, bufio.NewScanner(resp.Body))
	if !done {
		t.Fatal("join stream ended without its done summary")
	}
	wantPairs := [][2]int64{}
	us, ut := dedupInt64(sources), dedupInt64(tgts)
	for _, s := range us {
		for _, d := range ut {
			if g.ReachableBFS(VertexID(s), VertexID(d)) {
				wantPairs = append(wantPairs, [2]int64{s, d})
			}
		}
	}
	if len(pairs) != len(wantPairs) || count != len(wantPairs) || scanned != len(us)*len(ut) {
		t.Fatalf("join = %d pairs (count %d, scanned %d), want %d pairs scanned %d",
			len(pairs), count, scanned, len(wantPairs), len(us)*len(ut))
	}
	for i := range pairs {
		if pairs[i] != wantPairs[i] {
			t.Fatalf("join pairs[%d] = %v, want %v (order must be ascending (s,t))", i, pairs[i], wantPairs[i])
		}
	}

	// Cacheability split: path and from consulted the cache (pairs
	// accounted, hits+misses reconcile); count and join did not count
	// pairs. 60 path + Σ from targets is everything pair-counted.
	pairsSeen := reg.CounterValue("reachlab_query_pairs_total")
	wantSeen := int64(60 + len(targets)*((n+10)/11))
	if pairsSeen != wantSeen {
		t.Fatalf("pairs counter %d, want %d (count/join must not count pairs)", pairsSeen, wantSeen)
	}
	hits := reg.CounterValue("reachlab_cache_hits_total")
	misses := reg.CounterValue("reachlab_cache_misses_total")
	if hits+misses != pairsSeen {
		t.Fatalf("cache counters do not reconcile: %d + %d != %d", hits, misses, pairsSeen)
	}
}

func dedupInt64(vs []int64) []int64 {
	seen := map[int64]bool{}
	out := []int64{}
	for _, v := range vs {
		seen[v] = true
	}
	for v := int64(0); v < 1<<16; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}

// TestPathCacheHit: asking the same pair twice serves the second
// reachable bit from the hot-pair cache while still rebuilding the
// path, and the answers agree.
func TestPathCacheHit(t *testing.T) {
	_, _, _, reg, srv := buildTestServer(t, 256, DefaultMaxBatch)
	var first, second struct {
		Reachable bool    `json:"reachable"`
		Path      []int64 `json:"path"`
	}
	for i, out := range []*struct {
		Reachable bool    `json:"reachable"`
		Path      []int64 `json:"path"`
	}{&first, &second} {
		resp, err := http.Get(srv.URL + "/reach/path?s=2&t=40")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		_ = i
	}
	if first.Reachable != second.Reachable || len(first.Path) != len(second.Path) {
		t.Fatalf("repeated path query disagrees: %+v vs %+v", first, second)
	}
	if hits := reg.CounterValue("reachlab_cache_hits_total"); hits != 1 {
		t.Fatalf("second identical path query hit the cache %d times, want 1", hits)
	}
}

// TestPathEndpointNoGraph: an index loaded from disk has no graph, so
// /reach/path refuses with 501 — before any pair accounting — while
// the sweeps (/reach/count, /reach/from, /reach/join) keep working.
func TestPathEndpointNoGraph(t *testing.T) {
	g := randomCyclicGraph(30, 90, 7)
	built, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	h := NewQueryHandlerOpts(loaded, ServeOptions{Obs: reg, CachePairs: 64})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/reach/path?s=0&t=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("path on a graphless index: status %d, want 501", resp.StatusCode)
	}
	if pairs := reg.CounterValue("reachlab_query_pairs_total"); pairs != 0 {
		t.Fatalf("refused path query still counted %d pairs", pairs)
	}
	resp, err = http.Get(srv.URL + "/reach/count?s=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count on a graphless index: status %d, want 200", resp.StatusCode)
	}
}

// TestRichEndpointErrors walks the refusal grid of all four endpoints,
// mirroring TestBatchEndpointErrors: 400 for malformed input and
// out-of-range vertices, 405 for the wrong method, 413 for oversized
// lists, bodies, and cross products — and a mid-stream write failure
// must be dropped without forcing a status.
func TestRichEndpointErrors(t *testing.T) {
	g := randomCyclicGraph(20, 50, 11)
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 4
	const maxJoin = 6
	h := NewQueryHandlerOpts(idx, ServeOptions{
		Obs: NewMetricsRegistry(), CachePairs: 64, MaxBatch: maxBatch, MaxJoin: maxJoin,
	})
	do := func(method, target, body string) *httptest.ResponseRecorder {
		var r *httptest.ResponseRecorder
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		r = httptest.NewRecorder()
		h.ServeHTTP(r, req)
		return r
	}

	t.Run("path-bad-params", func(t *testing.T) {
		for _, q := range []string{"", "?s=1", "?s=abc&t=2", "?s=99&t=2", "?s=-1&t=2", "?s=1&t=20"} {
			if rec := do(http.MethodGet, "/reach/path"+q, ""); rec.Code != http.StatusBadRequest {
				t.Errorf("path%s: status %d, want 400", q, rec.Code)
			}
		}
		if rec := do(http.MethodPost, "/reach/path?s=1&t=2", ""); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST path: status %d, want 405", rec.Code)
		}
	})

	t.Run("count-bad-params", func(t *testing.T) {
		for _, q := range []string{"", "?s=x", "?s=20", "?s=-3"} {
			if rec := do(http.MethodGet, "/reach/count"+q, ""); rec.Code != http.StatusBadRequest {
				t.Errorf("count%s: status %d, want 400", q, rec.Code)
			}
		}
		if rec := do(http.MethodPost, "/reach/count?s=1", ""); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("POST count: status %d, want 405", rec.Code)
		}
	})

	t.Run("from-errors", func(t *testing.T) {
		cases := []struct {
			body string
			want int
		}{
			{`{"s": 0, "targets": [1, 2`, http.StatusBadRequest},
			{`garbage`, http.StatusBadRequest},
			{`{"s": -1, "targets": [1]}`, http.StatusBadRequest},
			{`{"s": 20, "targets": [1]}`, http.StatusBadRequest},
			{`{"s": 0, "targets": [1, 99]}`, http.StatusBadRequest},
			{`{"s": 0, "targets": [1, 2, 3, 4, 5]}`, http.StatusRequestEntityTooLarge},
			{`{"s": 0, "targets": [1]` + strings.Repeat(" ", int(h.maxBatchBytes())+64) + `}`,
				http.StatusRequestEntityTooLarge},
		}
		for _, c := range cases {
			if rec := do(http.MethodPost, "/reach/from", c.body); rec.Code != c.want {
				t.Errorf("from %.40q: status %d, want %d", c.body, rec.Code, c.want)
			}
		}
		if rec := do(http.MethodGet, "/reach/from", ""); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET from: status %d, want 405", rec.Code)
		}
	})

	t.Run("join-errors", func(t *testing.T) {
		cases := []struct {
			body string
			want int
		}{
			{`{"sources": [0], "targets": [1`, http.StatusBadRequest},
			{`{"sources": [0, -1], "targets": [1]}`, http.StatusBadRequest},
			{`{"sources": [0], "targets": [20]}`, http.StatusBadRequest},
			{`{"sources": [0, 1, 2, 3, 4], "targets": [1]}`, http.StatusRequestEntityTooLarge},
			{`{"sources": [0], "targets": [1, 2, 3, 4, 5]}`, http.StatusRequestEntityTooLarge},
			// Each list under the per-list cap, product over maxJoin.
			{`{"sources": [0, 1, 2], "targets": [3, 4, 5]}`, http.StatusRequestEntityTooLarge},
			{`{"sources": [0], "targets": [1]` + strings.Repeat(" ", 2*int(h.maxBatchBytes())+64) + `}`,
				http.StatusRequestEntityTooLarge},
		}
		for _, c := range cases {
			rec := do(http.MethodPost, "/reach/join", c.body)
			if rec.Code != c.want {
				t.Errorf("join %.40q: status %d, want %d", c.body, rec.Code, c.want)
			}
			if rec.Code != http.StatusOK && rec.Header().Get("Content-Type") == "application/x-ndjson" {
				t.Errorf("join refusal %.40q started an NDJSON stream", c.body)
			}
		}
		if rec := do(http.MethodGet, "/reach/join", ""); rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET join: status %d, want 405", rec.Code)
		}
		// Duplicates dedup below the product cap: 3 unique × 2 unique = 6.
		rec := do(http.MethodPost, "/reach/join", `{"sources": [0, 0, 1, 2], "targets": [3, 3, 4, 4]}`)
		if rec.Code != http.StatusOK {
			t.Errorf("deduplicated join under the cap: status %d, want 200", rec.Code)
		}
	})

	t.Run("writer-failure-drops", func(t *testing.T) {
		for _, c := range []struct{ method, target, body string }{
			{http.MethodGet, "/reach/path?s=0&t=0", ""},
			{http.MethodGet, "/reach/count?s=0", ""},
			{http.MethodPost, "/reach/from", `{"s": 0, "targets": [0]}`},
			{http.MethodPost, "/reach/join", `{"sources": [0], "targets": [0]}`},
		} {
			req := httptest.NewRequest(c.method, c.target, strings.NewReader(c.body))
			w := &failingWriter{header: make(http.Header)}
			h.ServeHTTP(w, req)
			if w.code != 0 {
				t.Errorf("%s %s forced status %d after a write failure", c.method, c.target, w.code)
			}
		}
	})
}

// FuzzJoinRequest throws arbitrary bodies at the join decoder: the
// handler must never panic, refuse with 400/413, or answer 200 with a
// complete NDJSON stream whose summary line is present and consistent.
func FuzzJoinRequest(f *testing.F) {
	g := randomCyclicGraph(20, 50, 11)
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		f.Fatal(err)
	}
	h := NewQueryHandlerOpts(idx, ServeOptions{Obs: NewMetricsRegistry(), MaxBatch: 8, MaxJoin: 32})
	f.Add(`{"sources": [0, 1], "targets": [2, 3]}`)
	f.Add(`{"sources": [], "targets": []}`)
	f.Add(`{"sources": [19], "targets": [0]}`)
	f.Add(`{"sources": [-1], "targets": [1]}`)
	f.Add(`{"sources": [0, 0, 0], "targets": [99999999]}`)
	f.Add(`{"sources": null, "targets": null}`)
	f.Add(`[[0, 1]]`)
	f.Add(`{"sources": [0.5], "targets": [1]}`)
	f.Add("\x00\xff not json")
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/reach/join", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
			pairs, count, _, done := decodeNDJoin(t, bufio.NewScanner(rec.Body))
			if !done {
				t.Fatalf("200 join stream without a done line (body %q)", body)
			}
			if count != len(pairs) {
				t.Fatalf("summary count %d, stream carried %d pairs (body %q)", count, len(pairs), body)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("join answered status %d for body %q", rec.Code, body)
		}
	})
}

// TestQueryHandlerConcurrentRich mixes all six endpoints from many
// goroutines across a mid-burst epoch swap (run under -race by make
// check and CI). Every answer must match the BFS oracle regardless of
// the epoch that served it — both epochs serve an equivalent index —
// and afterwards the pair-cache counters must reconcile exactly.
func TestQueryHandlerConcurrentRich(t *testing.T) {
	g, _, h, reg, srv := buildTestServer(t, 2048, DefaultMaxBatch)
	n := g.NumVertices()
	// The swapped-in index is built from the same graph, so oracle
	// answers stay valid across the swap.
	idx2, err := Build(context.Background(), g, Options{CondenseSCC: true})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 48
	var wg sync.WaitGroup
	var pairsSent atomic.Int64
	errs := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := srv.Client()
			fail := func(err error) {
				select {
				case errs <- err:
				default:
				}
			}
			for i := 0; i < perWorker; i++ {
				s, d := rng.Intn(n), rng.Intn(n)
				switch i % 6 {
				case 0: // point query
					var body struct {
						Reachable bool `json:"reachable"`
					}
					resp, err := client.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", srv.URL, s, d))
					if err != nil {
						fail(err)
						return
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						fail(err)
						return
					}
					pairsSent.Add(1)
					if want := g.ReachableBFS(VertexID(s), VertexID(d)); body.Reachable != want {
						fail(fmt.Errorf("reach(%d,%d) = %v, want %v", s, d, body.Reachable, want))
						return
					}
				case 1: // batch
					raw, _ := json.Marshal(map[string]any{"pairs": [][2]int64{{int64(s), int64(d)}, {int64(d), int64(s)}}})
					resp, err := client.Post(srv.URL+"/reach/batch", "application/json", bytes.NewReader(raw))
					if err != nil {
						fail(err)
						return
					}
					var body struct {
						Results []bool `json:"results"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						fail(err)
						return
					}
					pairsSent.Add(2)
					if len(body.Results) != 2 ||
						body.Results[0] != g.ReachableBFS(VertexID(s), VertexID(d)) ||
						body.Results[1] != g.ReachableBFS(VertexID(d), VertexID(s)) {
						fail(fmt.Errorf("batch(%d,%d) = %v", s, d, body.Results))
						return
					}
				case 2: // witness path
					resp, err := client.Get(fmt.Sprintf("%s/reach/path?s=%d&t=%d", srv.URL, s, d))
					if err != nil {
						fail(err)
						return
					}
					var body struct {
						Reachable bool    `json:"reachable"`
						Path      []int64 `json:"path"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						fail(err)
						return
					}
					pairsSent.Add(1)
					want := g.ReachableBFS(VertexID(s), VertexID(d))
					if body.Reachable != want || (want && len(body.Path) == 0) {
						fail(fmt.Errorf("path(%d,%d) = %+v, want reachable=%v", s, d, body, want))
						return
					}
				case 3: // set size
					resp, err := client.Get(fmt.Sprintf("%s/reach/count?s=%d", srv.URL, s))
					if err != nil {
						fail(err)
						return
					}
					var body struct {
						Count int `json:"count"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						fail(err)
						return
					}
					if want := oracleSetSize(g, VertexID(s)); body.Count != want {
						fail(fmt.Errorf("count(%d) = %d, want %d", s, body.Count, want))
						return
					}
				case 4: // one-source sweep
					targets := []int64{int64(d), int64((d + 1) % n), int64(s)}
					raw, _ := json.Marshal(map[string]any{"s": s, "targets": targets})
					resp, err := client.Post(srv.URL+"/reach/from", "application/json", bytes.NewReader(raw))
					if err != nil {
						fail(err)
						return
					}
					var body struct {
						Results []bool `json:"results"`
					}
					err = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
					if err != nil {
						fail(err)
						return
					}
					pairsSent.Add(int64(len(targets)))
					want := oracleRow(g, VertexID(s), targets)
					for k := range want {
						if body.Results[k] != want[k] {
							fail(fmt.Errorf("from(%d)[%d] = %v, want %v", s, k, body.Results[k], want[k]))
							return
						}
					}
				case 5: // join
					srcs := []int64{int64(s), int64((s + 3) % n)}
					tgts := []int64{int64(d), int64((d + 7) % n)}
					raw, _ := json.Marshal(map[string]any{"sources": srcs, "targets": tgts})
					resp, err := client.Post(srv.URL+"/reach/join", "application/json", bytes.NewReader(raw))
					if err != nil {
						fail(err)
						return
					}
					pairs, count, _, done := decodeNDJoin(t, bufio.NewScanner(resp.Body))
					resp.Body.Close()
					if !done || count != len(pairs) {
						fail(fmt.Errorf("join stream incomplete: done=%v count=%d pairs=%d", done, count, len(pairs)))
						return
					}
					for _, p := range pairs {
						if !g.ReachableBFS(VertexID(p[0]), VertexID(p[1])) {
							fail(fmt.Errorf("join streamed unreachable pair %v", p))
							return
						}
					}
				}
				if seed == 100 && i == perWorker/2 {
					// Mid-burst swap under full traffic from one worker.
					h.Swap(idx2)
				}
			}
		}(int64(wk) + 100)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits := reg.CounterValue("reachlab_cache_hits_total")
	misses := reg.CounterValue("reachlab_cache_misses_total")
	pairs := reg.CounterValue("reachlab_query_pairs_total")
	if pairs != pairsSent.Load() {
		t.Errorf("server counted %d pairs, clients sent %d", pairs, pairsSent.Load())
	}
	if hits+misses != pairs {
		t.Errorf("cache counters do not reconcile across the swap: %d + %d != %d", hits, misses, pairs)
	}
}

package reachlab

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
)

func testIndex(t *testing.T) *Index {
	t.Helper()
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestQueryHandlerReach(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()

	cases := []struct {
		s, t int
		want bool
	}{
		{1, 6, true},
		{9, 0, false},
		{7, 8, true},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/reach?s=" + itoa(c.s) + "&t=" + itoa(c.t))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Reachable != c.want {
			t.Errorf("reach(%d,%d) = %v, want %v", c.s, c.t, body.Reachable, c.want)
		}
	}
}

func TestQueryHandlerErrors(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	for _, url := range []string{
		"/reach",           // missing params
		"/reach?s=1",       // missing t
		"/reach?s=abc&t=2", // non-numeric
		"/reach?s=99&t=2",  // out of range
		"/reach?s=-1&t=2",  // negative
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestQueryHandlerStatsAndHealth(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Vertices int   `json:"vertices"`
		Entries  int64 `json:"entries"`
		Build    struct {
			Method     string `json:"method"`
			Workers    int    `json:"workers"`
			Supersteps int    `json:"supersteps"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Vertices != 11 || stats.Entries == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Build.Method != string(MethodDRLBatch) || stats.Build.Supersteps == 0 {
		t.Errorf("build section = %+v", stats.Build)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestStatsExposeFaultCounters builds over a real RPC cluster through
// a lossy transport and checks the retry/checkpoint counters surface
// on /stats.
func TestStatsExposeFaultCounters(t *testing.T) {
	g := NewGraph(11, testEdges())
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, g.d, true); err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		ready := make(chan string, 1)
		//lint:ignore goleak test worker serves until the process exits; ready (sent inside pregel.ServeWorker) is the only handshake it needs
		go func() {
			if err := ServeWorker("127.0.0.1:0", ready); err != nil {
				t.Log(err)
			}
		}()
		addrs = append(addrs, <-ready)
	}
	seed := int64(0)
	copt := ClusterOptions{
		Retry: RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
		CheckpointEvery: 2,
		Dial: func(addr string) (pregel.Transport, error) {
			inner, err := pregel.DialRPC(addr)
			if err != nil {
				return nil, err
			}
			seed++
			return pregel.NewFaultTransport(inner, pregel.FaultPlan{Seed: seed, DropProb: 0.25}), nil
		},
	}
	idx, err := BuildOverClusterOpts(addrs, path, Options{}, copt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewQueryHandler(idx))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Build struct {
			Retries            int64 `json:"retries"`
			Recoveries         int64 `json:"recoveries"`
			Checkpoints        int64 `json:"checkpoints"`
			LastCheckpointStep int   `json:"last_checkpoint_step"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Build.Retries == 0 {
		t.Error("expected retried calls on a lossy transport")
	}
	if stats.Build.Checkpoints == 0 || stats.Build.LastCheckpointStep == 0 {
		t.Errorf("expected checkpoint activity in /stats: %+v", stats.Build)
	}
}

// TestMetricsEndpoint drives a build and queries through one registry
// and checks the /metrics document: the build counters must equal the
// BuildStats numbers exactly, and the HTTP counters must reflect the
// requests just made.
func TestMetricsEndpoint(t *testing.T) {
	reg := NewMetricsRegistry()
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewQueryHandlerObs(idx, reg))
	defer srv.Close()

	// One good query, one rejected query, one stats call.
	for _, url := range []string{"/reach?s=1&t=6", "/reach?s=99&t=2", "/stats"} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	bs := idx.BuildStats()
	for _, line := range []string{
		fmt.Sprintf("pregel_messages_total %d", bs.Messages),
		fmt.Sprintf("pregel_supersteps_total %d", bs.Supersteps),
		`reachlab_http_requests_total{handler="reach"} 2`,
		`reachlab_http_errors_total{handler="reach"} 1`,
		`reachlab_http_requests_total{handler="stats"} 1`,
		"reachlab_query_seconds_count 1",
	} {
		if !strings.Contains(doc, line) {
			t.Errorf("/metrics missing %q\n--- document:\n%s", line, doc)
		}
	}
}

// TestTraceEndpoint: the superstep trace collected during the build is
// served as JSON and covers every superstep.
func TestTraceEndpoint(t *testing.T) {
	reg := NewMetricsRegistry()
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewQueryHandlerObs(idx, reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var traces map[string][]struct {
		Step     int   `json:"step"`
		Messages int64 `json:"messages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	steps := traces["pregel"]
	if len(steps) != idx.BuildStats().Supersteps {
		t.Fatalf("trace has %d rows, build ran %d supersteps", len(steps), idx.BuildStats().Supersteps)
	}
	var msgs int64
	for _, s := range steps {
		msgs += s.Messages
	}
	if msgs != idx.BuildStats().Messages {
		t.Errorf("trace messages sum to %d, BuildStats says %d", msgs, idx.BuildStats().Messages)
	}
}

// TestStatsDiskLoadedIndex: an index loaded from disk carries no build
// record; /stats must serve zeros rather than stale or garbage values.
func TestStatsDiskLoadedIndex(t *testing.T) {
	var buf bytes.Buffer
	if _, err := testIndex(t).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewQueryHandlerObs(loaded, NewMetricsRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Vertices int `json:"vertices"`
		Build    struct {
			Method     string `json:"method"`
			Workers    int    `json:"workers"`
			Supersteps int    `json:"supersteps"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Vertices != 11 {
		t.Errorf("vertices = %d, want 11", stats.Vertices)
	}
	if stats.Build.Method != "" || stats.Build.Workers != 0 || stats.Build.Supersteps != 0 {
		t.Errorf("disk-loaded index should report a zero build record, got %+v", stats.Build)
	}
	// Queries still work without a build record.
	resp, err = http.Get(srv.URL + "/reach?s=1&t=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("reach on disk-loaded index: status %d", resp.StatusCode)
	}
}

// failingWriter reports a write error on the first body write, the way
// a closed client connection does.
type failingWriter struct {
	header http.Header
	code   int
}

func (w *failingWriter) Header() http.Header { return w.header }

func (w *failingWriter) WriteHeader(code int) { w.code = code }

func (w *failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("connection reset")
}

// TestWriteJSONFailure: when the encoder fails mid-stream the handler
// must not splice an http.Error page into the half-written response —
// it logs and drops. No status may be forced after the fact.
func TestWriteJSONFailure(t *testing.T) {
	w := &failingWriter{header: make(http.Header)}
	writeJSON(w, map[string]any{"k": "v"})
	if w.code != 0 {
		t.Errorf("writeJSON forced status %d after a mid-stream failure", w.code)
	}

	// An unencodable value likewise produces no error page: the
	// recorder's body stays empty and the implicit 200 stands.
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]any{"fn": func() {}})
	if rec.Body.Len() != 0 {
		t.Errorf("writeJSON wrote %q after an encode failure", rec.Body.String())
	}
	if rec.Code != http.StatusOK {
		t.Errorf("writeJSON set status %d, want untouched 200", rec.Code)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

package reachlab

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
)

func testIndex(t *testing.T) *Index {
	t.Helper()
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestQueryHandlerReach(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()

	cases := []struct {
		s, t int
		want bool
	}{
		{1, 6, true},
		{9, 0, false},
		{7, 8, true},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/reach?s=" + itoa(c.s) + "&t=" + itoa(c.t))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Reachable != c.want {
			t.Errorf("reach(%d,%d) = %v, want %v", c.s, c.t, body.Reachable, c.want)
		}
	}
}

func TestQueryHandlerErrors(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	for _, url := range []string{
		"/reach",           // missing params
		"/reach?s=1",       // missing t
		"/reach?s=abc&t=2", // non-numeric
		"/reach?s=99&t=2",  // out of range
		"/reach?s=-1&t=2",  // negative
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestQueryHandlerStatsAndHealth(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Vertices int   `json:"vertices"`
		Entries  int64 `json:"entries"`
		Build    struct {
			Method     string `json:"method"`
			Workers    int    `json:"workers"`
			Supersteps int    `json:"supersteps"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Vertices != 11 || stats.Entries == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Build.Method != string(MethodDRLBatch) || stats.Build.Supersteps == 0 {
		t.Errorf("build section = %+v", stats.Build)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestStatsExposeFaultCounters builds over a real RPC cluster through
// a lossy transport and checks the retry/checkpoint counters surface
// on /stats.
func TestStatsExposeFaultCounters(t *testing.T) {
	g := NewGraph(11, testEdges())
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, g.d, true); err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		ready := make(chan string, 1)
		go func() {
			if err := ServeWorker("127.0.0.1:0", ready); err != nil {
				t.Log(err)
			}
		}()
		addrs = append(addrs, <-ready)
	}
	seed := int64(0)
	copt := ClusterOptions{
		Retry: RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
		},
		CheckpointEvery: 2,
		Dial: func(addr string) (pregel.Transport, error) {
			inner, err := pregel.DialRPC(addr)
			if err != nil {
				return nil, err
			}
			seed++
			return pregel.NewFaultTransport(inner, pregel.FaultPlan{Seed: seed, DropProb: 0.25}), nil
		},
	}
	idx, err := BuildOverClusterOpts(addrs, path, Options{}, copt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewQueryHandler(idx))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Build struct {
			Retries            int64 `json:"retries"`
			Recoveries         int64 `json:"recoveries"`
			Checkpoints        int64 `json:"checkpoints"`
			LastCheckpointStep int   `json:"last_checkpoint_step"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Build.Retries == 0 {
		t.Error("expected retried calls on a lossy transport")
	}
	if stats.Build.Checkpoints == 0 || stats.Build.LastCheckpointStep == 0 {
		t.Errorf("expected checkpoint activity in /stats: %+v", stats.Build)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

package reachlab

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func testIndex(t *testing.T) *Index {
	t.Helper()
	g := NewGraph(11, testEdges())
	idx, err := Build(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestQueryHandlerReach(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()

	cases := []struct {
		s, t int
		want bool
	}{
		{1, 6, true},
		{9, 0, false},
		{7, 8, true},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/reach?s=" + itoa(c.s) + "&t=" + itoa(c.t))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if body.Reachable != c.want {
			t.Errorf("reach(%d,%d) = %v, want %v", c.s, c.t, body.Reachable, c.want)
		}
	}
}

func TestQueryHandlerErrors(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	for _, url := range []string{
		"/reach",           // missing params
		"/reach?s=1",       // missing t
		"/reach?s=abc&t=2", // non-numeric
		"/reach?s=99&t=2",  // out of range
		"/reach?s=-1&t=2",  // negative
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
}

func TestQueryHandlerStatsAndHealth(t *testing.T) {
	srv := httptest.NewServer(NewQueryHandler(testIndex(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Vertices int   `json:"vertices"`
		Entries  int64 `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Vertices != 11 || stats.Entries == 0 {
		t.Errorf("stats = %+v", stats)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

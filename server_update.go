package reachlab

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tol"
	"repro/internal/wal"
)

// The mutation path for the serving tier (DESIGN.md §12). The paper's
// §II-B Remark leaves index maintenance under updates open; the
// serving-side answer here is a write-ahead edge log in front of the
// centralized dynamic maintainer:
//
//	POST /edges → wal.Log (durable) → [refresher] → tol.DynamicIndex
//	                                       ↓ snapshot
//	                              QueryHandler.Swap (epoch k+1)
//
// Queries keep serving the frozen epoch-k index at full speed while
// the refresher drains the log in batches into the dynamic maintainer
// and freezes the result into the next epoch. A write is acknowledged
// only after its WAL append is fsync-durable, and the acknowledgement
// carries the exact epoch that will first contain it, so a client can
// poll X-Reachlab-Epoch (or /healthz) for read-your-writes.
//
// Staleness is bounded by the refresh interval plus one batch drain:
// an acknowledged write waits at most RefreshEvery for the next cut
// plus ceil(backlog/RefreshBatch) swap cycles if a burst outran one
// batch.

// ErrUpdaterClosed is returned by Apply after Close.
var ErrUpdaterClosed = errors.New("reachlab: updater closed")

// ErrVertexRange is returned (wrapped) by Apply for an endpoint
// outside the graph's ID space.
var ErrVertexRange = errors.New("reachlab: vertex out of range")

// UpdaterOptions configures NewUpdater.
type UpdaterOptions struct {
	// RefreshEvery is the refresher's tick interval (default 2s):
	// the staleness bound for a write arriving into an idle log.
	RefreshEvery time.Duration
	// RefreshBatch caps how many log records one refresh applies
	// before freezing and swapping a snapshot (default 1024). A burst
	// larger than one batch drains over several epochs.
	RefreshBatch int
	// Obs receives the update-path metrics; nil disables them.
	Obs *MetricsRegistry
}

// DefaultRefreshEvery and DefaultRefreshBatch back the zero values of
// UpdaterOptions.
const (
	DefaultRefreshEvery = 2 * time.Second
	DefaultRefreshBatch = 1024
)

// Updater owns the mutation path of one serving replica: the durable
// edge log, the dynamic maintainer that absorbs it, and the epoch
// bookkeeping that ties acknowledged sequence numbers to served
// epochs. It must be the *only* source of QueryHandler.Swap calls —
// update mode disables the reload loader so epochs advance in lock
// step with log sequence numbers (the epoch-acknowledgement contract
// breaks if anything else bumps the epoch).
type Updater struct {
	log   *wal.Log
	dyn   *tol.DynamicIndex
	every time.Duration
	batch int

	// mu guards the refresh plan: what the published epoch contains
	// (appliedSeq), what the in-flight refresh will publish (cutSeq),
	// and the epoch→seq history. Apply takes it briefly to compute
	// the promised epoch; the refresher takes it around the swap, so
	// a promise computed under mu is exact.
	mu         sync.Mutex
	h          *QueryHandler
	appliedSeq uint64
	cutSeq     uint64
	inflight   bool
	epochSeq   map[uint64]uint64
	firstPend  time.Time // append time of the oldest unapplied write
	closed     bool

	stop chan struct{}
	done chan struct{}

	// testHookMidRefresh, when set, runs after a refresh batch is cut
	// and applied but before the snapshot swap — the window chaos
	// tests stretch to catch readers against a stale epoch.
	testHookMidRefresh func()

	walAppends  *obs.Counter
	refreshes   *obs.Counter
	refreshHist *obs.Histogram
	seqLag      *obs.Gauge
	epochLag    *obs.Gauge
	staleness   *obs.Gauge
	repairs     *obs.Counter
	rebuilds    *obs.Counter
	nRefreshes  int64 // completed refresh swaps, under mu
	statRepairs int64 // last folded tol.UpdateStats, under mu
	statRebuild int64
}

// NewUpdater builds the mutation path over g and log: it constructs
// the dynamic maintainer, replays every record already in the log
// (recovery — acknowledged writes survive a crash because they were
// fsync-durable before the ack), and is then ready to Start. Call
// Snapshot for the index the paired QueryHandler should serve from.
func NewUpdater(g *Graph, log *wal.Log, opts UpdaterOptions) (*Updater, error) {
	if g == nil {
		return nil, errors.New("reachlab: nil graph")
	}
	if log == nil {
		return nil, errors.New("reachlab: nil wal")
	}
	every := opts.RefreshEvery
	if every <= 0 {
		every = DefaultRefreshEvery
	}
	batch := opts.RefreshBatch
	if batch <= 0 {
		batch = DefaultRefreshBatch
	}
	reg := opts.Obs
	u := &Updater{
		log:      log,
		dyn:      tol.NewDynamic(g.d),
		every:    every,
		batch:    batch,
		epochSeq: make(map[uint64]uint64),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),

		walAppends:  reg.Counter("reachlab_wal_appends_total"),
		refreshes:   reg.Counter("reachlab_refreshes_total"),
		refreshHist: reg.Histogram("reachlab_refresh_seconds", obs.LatencyBuckets),
		seqLag:      reg.Gauge("reachlab_update_seq_lag"),
		epochLag:    reg.Gauge("reachlab_update_epoch_lag"),
		staleness:   reg.Gauge("reachlab_update_staleness_ms"),
		repairs:     reg.Counter("reachlab_dynamic_repairs_total"),
		rebuilds:    reg.Counter("reachlab_dynamic_rebuilds_total"),
	}
	if err := u.replayAll(); err != nil {
		return nil, err
	}
	return u, nil
}

// replayAll drives every durable log record into the maintainer —
// the crash-recovery path: the served snapshot then reflects every
// acknowledged write.
func (u *Updater) replayAll() error {
	err := u.log.Replay(0, func(r wal.Record) error { return u.applyRecord(r) })
	if err != nil {
		return fmt.Errorf("reachlab: wal replay: %w", err)
	}
	u.appliedSeq = u.log.LastSeq()
	u.foldDynStats()
	return nil
}

func (u *Updater) applyRecord(r wal.Record) error {
	switch r.Op {
	case wal.OpInsert:
		return u.dyn.InsertEdge(r.U, r.V)
	case wal.OpDelete:
		return u.dyn.DeleteEdge(r.U, r.V)
	}
	return fmt.Errorf("reachlab: wal record %d: unknown op %d", r.Seq, byte(r.Op))
}

// foldDynStats turns the maintainer's cumulative repair/rebuild tally
// into monotonic metric counters and the mu-guarded Stats view. Only
// the refresher goroutine (or the constructor, before Start) calls
// it — the maintainer itself is single-writer.
func (u *Updater) foldDynStats() {
	s := u.dyn.UpdateStats()
	u.mu.Lock()
	dr, db := s.Repairs-u.statRepairs, s.Rebuilds-u.statRebuild
	u.statRepairs, u.statRebuild = s.Repairs, s.Rebuilds
	u.mu.Unlock()
	u.repairs.Add(dr)
	u.rebuilds.Add(db)
}

// Snapshot freezes the maintainer's current labels — the index a
// QueryHandler paired with this updater should be constructed with.
// The maintainer's graph rides along (one O(n+m) CSR materialization)
// so every published epoch serves witness paths that are verifiable
// against exactly the edges that epoch indexed.
func (u *Updater) Snapshot() *Index {
	return &Index{idx: u.dyn.Snapshot(), g: u.dyn.Graph()}
}

// AppliedSeq returns the highest log sequence number reflected in the
// published epoch.
func (u *Updater) AppliedSeq() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.appliedSeq
}

// EpochSeq reports the highest log sequence number contained in
// epoch. The epoch the handler started serving at covers everything
// replayed before Start; epochs swapped in by the refresher record
// their batch cut. Unknown epochs (pre-start, or swapped by something
// other than the updater) report ok == false.
func (u *Updater) EpochSeq(epoch uint64) (seq uint64, ok bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	seq, ok = u.epochSeq[epoch]
	return seq, ok
}

// Start binds the updater to h (recording h's current epoch as
// containing everything applied so far) and launches the background
// refresher. The handler's index must be the updater's Snapshot —
// Start does not swap.
func (u *Updater) Start(h *QueryHandler) {
	u.mu.Lock()
	u.h = h
	u.epochSeq[h.Epoch()] = u.appliedSeq
	u.mu.Unlock()
	go u.run()
}

// Close stops the refresher (waiting for an in-flight refresh to
// finish) and rejects further Apply calls. It does not close the log
// — the caller owns that — and does not drain unapplied records:
// they are durable and replay on restart.
func (u *Updater) Close() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	started := u.h != nil
	u.mu.Unlock()
	close(u.stop)
	if started {
		<-u.done
	}
}

// Apply validates and durably logs one edge mutation, returning its
// log sequence number and the exact epoch that will first serve it.
// The write is fsync-durable when Apply returns — a crash after the
// ack replays it — but not yet visible: visibility arrives when the
// handler's epoch reaches the returned epoch.
func (u *Updater) Apply(insert bool, a, b VertexID) (seq, epoch uint64, err error) {
	if n := u.dyn.NumVertices(); int(a) >= n || a < 0 || int(b) >= n || b < 0 {
		return 0, 0, fmt.Errorf("%w: edge (%d,%d) for %d vertices", ErrVertexRange, a, b, n)
	}
	op := wal.OpDelete
	if insert {
		op = wal.OpInsert
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return 0, 0, ErrUpdaterClosed
	}
	u.mu.Unlock()
	seq, err = u.log.Append(op, a, b)
	if err != nil {
		return 0, 0, fmt.Errorf("reachlab: wal append: %w", err)
	}
	u.walAppends.Inc()

	// Promise the epoch that will first contain seq. base is the
	// highest seq already spoken for (published, or cut by the
	// in-flight refresh publishing as pub); every future refresh
	// advances the frontier by at most RefreshBatch and by at least
	// the full backlog-at-cut, so seq lands exactly
	// ceil((seq-base)/RefreshBatch) swaps after base's epoch.
	u.mu.Lock()
	defer u.mu.Unlock()
	pub := uint64(1)
	if u.h != nil {
		pub = u.h.Epoch()
	}
	if seq <= u.appliedSeq {
		// One or more whole refresh cycles completed between the append
		// and this lock: seq is already inside a published epoch. The
		// promise is the FIRST epoch whose cut covered it — the current
		// epoch is too late whenever more than one swap fit in the
		// window. Walk the recorded cuts back to the earliest cover.
		epoch = pub
		for {
			prev, ok := u.epochSeq[epoch-1]
			if !ok || prev < seq {
				break
			}
			epoch--
		}
		return seq, epoch, nil
	}
	base := u.appliedSeq
	if u.inflight {
		// The in-flight refresh cut at cutSeq and will publish as
		// pub+1; seq is unpublished, so that epoch is either its home
		// (seq ≤ cut) or the base the remaining backlog drains from.
		base = u.cutSeq
		pub++
	}
	epoch = pub
	if seq > base {
		epoch += (seq - base + uint64(u.batch) - 1) / uint64(u.batch)
	}
	if u.firstPend.IsZero() {
		u.firstPend = time.Now()
	}
	return seq, epoch, nil
}

// run is the background refresher: every tick, drain up to one batch
// of durable log records into the maintainer, freeze a snapshot, and
// swap it in as the next epoch.
func (u *Updater) run() {
	defer close(u.done)
	ticker := time.NewTicker(u.every)
	defer ticker.Stop()
	for {
		select {
		case <-u.stop:
			return
		case <-ticker.C:
			u.refreshOnce()
		}
	}
}

// errBatchFull stops a replay cleanly once a refresh batch is cut.
var errBatchFull = errors.New("batch full")

// refreshOnce cuts the next contiguous batch from the log, applies it
// to the maintainer, and swaps the frozen snapshot in. Runs on the
// refresher goroutine only — the maintainer is single-writer.
func (u *Updater) refreshOnce() {
	start := time.Now()

	// Plan the cut BEFORE reading the log, in the same critical
	// section that marks the refresh in flight: from the instant this
	// unlocks, every Apply sees exactly which seqs this refresh will
	// publish, so its promise arithmetic is exact. (Planning after the
	// replay left a window where a promise counted a seq into this
	// refresh that the already-pinned replay could no longer include.)
	// A failed attempt keeps the plan, and the retry honors it —
	// promises made against the plan stay valid across retries.
	u.mu.Lock()
	from := u.appliedSeq
	cut := u.cutSeq
	if !u.inflight {
		cut = u.log.LastSeq()
		if lim := from + uint64(u.batch); cut > lim {
			cut = lim
		}
		if cut > from {
			u.inflight = true
			u.cutSeq = cut
		}
	}
	u.mu.Unlock()

	if cut <= from {
		u.seqLag.Set(0)
		u.epochLag.Set(0)
		u.staleness.Set(0)
		return
	}

	var recs []wal.Record
	err := u.log.Replay(from, func(r wal.Record) error {
		recs = append(recs, r)
		if r.Seq >= cut {
			return errBatchFull
		}
		return nil
	})
	if err != nil && !errors.Is(err, errBatchFull) {
		// A read error leaves the published epoch serving; the next
		// tick retries the same planned cut (inflight stays set).
		u.seqLag.Set(int64(u.log.SyncedSeq() - from))
		return
	}
	if len(recs) == 0 || recs[len(recs)-1].Seq != cut {
		// The log delivered less than the plan — only possible on a
		// torn read; retry the plan next tick.
		u.seqLag.Set(int64(u.log.SyncedSeq() - from))
		return
	}

	for _, r := range recs {
		if err := u.applyRecord(r); err != nil {
			// Only possible for an out-of-range vertex that slipped
			// past Apply's validation (a foreign log). Skip: the
			// record is a no-op on this graph.
			continue
		}
	}
	u.foldDynStats()
	if u.testHookMidRefresh != nil {
		u.testHookMidRefresh()
	}
	// The graph snapshot keeps /reach/path consistent with the labels:
	// an epoch's witness paths walk exactly the edges its labels cover.
	idx := &Index{idx: u.dyn.Snapshot(), g: u.dyn.Graph()}

	// Swap under mu so an Apply computing its promise never observes
	// the new epoch with the old frontier (or vice versa). The swap
	// itself is a pointer flip — queries never block on it.
	u.mu.Lock()
	epoch := u.h.Swap(idx)
	u.appliedSeq = cut
	u.inflight = false
	u.epochSeq[epoch] = cut
	pending := u.log.SyncedSeq() - cut
	if pending == 0 {
		u.firstPend = time.Time{}
		u.staleness.Set(0)
	} else {
		// The oldest unapplied write is no older than this refresh's
		// start; carry that bound until the backlog drains.
		u.firstPend = start
		u.staleness.Set(time.Since(start).Milliseconds())
	}
	u.seqLag.Set(int64(pending))
	u.epochLag.Set(int64((pending + uint64(u.batch) - 1) / uint64(u.batch)))
	u.nRefreshes++
	u.mu.Unlock()

	u.refreshes.Inc()
	u.refreshHist.Observe(time.Since(start).Seconds())
}

// UpdateStats is one consistent view of the mutation path, served
// under /stats as the "updates" block.
type UpdaterStats struct {
	LastSeq    uint64 `json:"last_seq"`    // highest acknowledged seq
	SyncedSeq  uint64 `json:"synced_seq"`  // highest fsync-durable seq
	AppliedSeq uint64 `json:"applied_seq"` // highest seq in the published epoch
	SeqLag     uint64 `json:"seq_lag"`     // synced - applied
	Refreshes  int64  `json:"refreshes"`
	Repairs    int64  `json:"repairs"`
	Rebuilds   int64  `json:"rebuilds"`
}

// Stats returns the updater's current counters. Repair/rebuild and
// refresh tallies come from the updater's own bookkeeping (folded
// under mu at each refresh), not the metrics registry, so they are
// exact even with instrumentation disabled.
func (u *Updater) Stats() UpdaterStats {
	u.mu.Lock()
	applied := u.appliedSeq
	refreshes := u.nRefreshes
	repairs, rebuilds := u.statRepairs, u.statRebuild
	u.mu.Unlock()
	synced := u.log.SyncedSeq()
	return UpdaterStats{
		LastSeq:    u.log.LastSeq(),
		SyncedSeq:  synced,
		AppliedSeq: applied,
		SeqLag:     synced - applied,
		Refreshes:  refreshes,
		Repairs:    repairs,
		Rebuilds:   rebuilds,
	}
}

// EnableUpdates registers the mutation endpoint on h and routes its
// /stats "updates" block to u. The handler must be serving u's
// Snapshot and must not have a reload loader configured (the updater
// owns all epoch advances); call before Start so no mutation can
// race the binding.
//
//	POST /edges → {"op":"insert","u":3,"v":17}
//	            ← {"op":"insert","u":3,"v":17,"seq":42,"epoch":7}
func (h *QueryHandler) EnableUpdates(u *Updater) {
	h.updater = u
}

type edgeRequest struct {
	Op string `json:"op"`
	U  int64  `json:"u"`
	V  int64  `json:"v"`
}

type edgeResponse struct {
	Op    string `json:"op"`
	U     int64  `json:"u"`
	V     int64  `json:"v"`
	Seq   uint64 `json:"seq"`
	Epoch uint64 `json:"epoch"`
}

// edges serves POST /edges: durably log one insert or delete and
// acknowledge with its sequence number and the epoch that will first
// contain it.
func (h *QueryHandler) edges(w http.ResponseWriter, r *http.Request) {
	h.obs.Counter(obs.Label("reachlab_http_requests_total", "handler", "edges")).Inc()
	u := h.updater
	if u == nil {
		h.fail(w, "edges", "updates not enabled on this replica", http.StatusNotImplemented)
		return
	}
	var req edgeRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.fail(w, "edges", fmt.Sprintf("bad edge request: %v", err), http.StatusBadRequest)
		return
	}
	var insert bool
	switch req.Op {
	case "insert":
		insert = true
	case "delete":
	default:
		h.fail(w, "edges", fmt.Sprintf("bad op %q: want insert or delete", req.Op), http.StatusBadRequest)
		return
	}
	if req.U != int64(VertexID(req.U)) || req.V != int64(VertexID(req.V)) {
		h.fail(w, "edges", fmt.Sprintf("vertex out of int32 range: [%d,%d]", req.U, req.V), http.StatusBadRequest)
		return
	}
	seq, epoch, err := u.Apply(insert, VertexID(req.U), VertexID(req.V))
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrUpdaterClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrVertexRange):
			code = http.StatusBadRequest
		}
		h.fail(w, "edges", err.Error(), code)
		return
	}
	writeJSON(w, edgeResponse{Op: req.Op, U: req.U, V: req.V, Seq: seq, Epoch: epoch})
}

package reachlab

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/wal"
)

func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	var edges []Edge
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{From: VertexID(i), To: VertexID(i + 1)})
	}
	return NewGraph(n, edges)
}

// newUpdateServer wires the full mutation path over g: WAL in a temp
// dir, updater, handler serving the replayed snapshot.
func newUpdateServer(t *testing.T, g *Graph, opts UpdaterOptions) (*QueryHandler, *Updater, *wal.Log) {
	t.Helper()
	log, err := wal.Open(filepath.Join(t.TempDir(), "edges.wal"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	u, err := NewUpdater(g, log, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := NewQueryHandlerObs(u.Snapshot(), nil)
	h.EnableUpdates(u)
	u.Start(h)
	t.Cleanup(u.Close)
	return h, u, log
}

func postEdge(t *testing.T, srv *httptest.Server, op string, u, v int) edgeResponse {
	t.Helper()
	body, _ := json.Marshal(edgeRequest{Op: op, U: int64(u), V: int64(v)})
	resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /edges %s(%d,%d): status %d", op, u, v, resp.StatusCode)
	}
	var ack edgeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// waitEpoch polls until the handler serves at least epoch, failing
// after a generous deadline.
func waitEpoch(t *testing.T, h *QueryHandler, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.Epoch() < epoch {
		if time.Now().After(deadline) {
			t.Fatalf("epoch %d never arrived (at %d)", epoch, h.Epoch())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUpdaterMutationVisible: a POST /edges ack names an epoch; once
// the handler serves that epoch, the write is visible to queries.
func TestUpdaterMutationVisible(t *testing.T) {
	g := lineGraph(t, 10)
	h, u, _ := newUpdateServer(t, g, UpdaterOptions{RefreshEvery: 5 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()

	if h.Index().Reachable(9, 0) {
		t.Fatal("line graph should not reach backwards")
	}
	ack := postEdge(t, srv, "insert", 9, 0)
	if ack.Seq != 1 {
		t.Fatalf("first append got seq %d", ack.Seq)
	}
	waitEpoch(t, h, ack.Epoch)
	// Query via HTTP so the epoch header is exercised too.
	resp, err := http.Get(srv.URL + "/reach?s=9&t=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got reachResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Reachable {
		t.Fatalf("edge (9,0) not visible at epoch %s", resp.Header.Get(EpochHeader))
	}
	if e, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64); e < ack.Epoch {
		t.Fatalf("answered epoch %d below promised %d", e, ack.Epoch)
	}
	// The delete round-trips.
	ack = postEdge(t, srv, "delete", 9, 0)
	waitEpoch(t, h, ack.Epoch)
	if h.Index().Reachable(9, 0) {
		t.Fatal("deleted edge still visible")
	}
	if s := u.Stats(); s.AppliedSeq != 2 || s.SeqLag != 0 {
		t.Fatalf("stats after drain: %+v", s)
	}
}

// TestUpdaterEpochPromiseExact: the acknowledged epoch is exactly the
// first epoch containing the write — never earlier, never later —
// across a burst larger than one refresh batch.
func TestUpdaterEpochPromiseExact(t *testing.T) {
	g := lineGraph(t, 50)
	_, u, _ := newUpdateServer(t, g, UpdaterOptions{
		RefreshEvery: 2 * time.Millisecond,
		RefreshBatch: 3,
	})

	type promise struct{ seq, epoch uint64 }
	var acks []promise
	for i := 0; i < 20; i++ {
		// Distinct forward skip-edges: all effective inserts.
		seq, epoch, err := u.Apply(true, VertexID(i), VertexID(i+2))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, promise{seq, epoch})
	}
	// Wait for the full drain.
	deadline := time.Now().Add(10 * time.Second)
	for u.AppliedSeq() < acks[len(acks)-1].seq {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: applied %d", u.AppliedSeq())
		}
		time.Sleep(time.Millisecond)
	}
	for _, a := range acks {
		cut, ok := u.EpochSeq(a.epoch)
		if !ok {
			t.Fatalf("promised epoch %d for seq %d never materialized", a.epoch, a.seq)
		}
		if cut < a.seq {
			t.Fatalf("epoch %d cut at %d excludes promised seq %d", a.epoch, cut, a.seq)
		}
		if prev, ok := u.EpochSeq(a.epoch - 1); ok && prev >= a.seq {
			t.Fatalf("seq %d already present at epoch %d (cut %d), promised %d",
				a.seq, a.epoch-1, prev, a.epoch)
		}
	}
}

// TestUpdaterRecovery: acknowledged writes survive a crash — a new
// updater over the same WAL replays them all into its snapshot.
func TestUpdaterRecovery(t *testing.T) {
	g := lineGraph(t, 10)
	path := filepath.Join(t.TempDir(), "edges.wal")
	log, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Long refresh interval: the writes are acked but never applied,
	// mimicking a crash between ack and refresh.
	u, err := NewUpdater(g, log, UpdaterOptions{RefreshEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	h := NewQueryHandlerObs(u.Snapshot(), nil)
	h.EnableUpdates(u)
	u.Start(h)
	if _, _, err := u.Apply(true, 9, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply(true, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Apply(false, 0, 1); err != nil {
		t.Fatal(err)
	}
	u.Close()
	log.Close() // crash: refresher never ran, snapshot never swapped

	log2, err := wal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	u2, err := NewUpdater(g, log2, UpdaterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	idx := u2.Snapshot()
	if !idx.Reachable(9, 0) || !idx.Reachable(5, 0) {
		t.Fatal("acknowledged inserts lost across restart")
	}
	if idx.Reachable(0, 1) {
		t.Fatal("acknowledged delete lost across restart")
	}
	if u2.AppliedSeq() != 3 {
		t.Fatalf("replay frontier %d, want 3", u2.AppliedSeq())
	}
}

// TestUpdaterRejects: malformed requests fail with 4xx and never
// reach the log.
func TestUpdaterRejects(t *testing.T) {
	g := lineGraph(t, 4)
	h, _, log := newUpdateServer(t, g, UpdaterOptions{RefreshEvery: time.Hour})
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		body string
		want int
	}{
		{`{"op":"insert","u":0,"v":99}`, http.StatusBadRequest},         // out of range
		{`{"op":"upsert","u":0,"v":1}`, http.StatusBadRequest},          // bad op
		{`{"op":"insert","u":-1,"v":1}`, http.StatusBadRequest},         // negative
		{`{"op":"insert","u":8589934592,"v":1}`, http.StatusBadRequest}, // > int32
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := post(c.body); got != c.want {
			t.Errorf("POST %s: status %d, want %d", c.body, got, c.want)
		}
	}
	if log.LastSeq() != 0 {
		t.Fatalf("rejected requests reached the log: seq %d", log.LastSeq())
	}
	// A handler without an updater refuses mutations.
	plain := httptest.NewServer(NewQueryHandlerObs(h.Index(), nil))
	defer plain.Close()
	resp, err := http.Post(plain.URL+"/edges", "application/json",
		bytes.NewReader([]byte(`{"op":"insert","u":0,"v":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("updates-disabled replica answered %d, want 501", resp.StatusCode)
	}
}

// TestUpdaterStatsBlock: /stats grows an "updates" block when the
// mutation path is enabled.
func TestUpdaterStatsBlock(t *testing.T) {
	g := lineGraph(t, 6)
	h, _, _ := newUpdateServer(t, g, UpdaterOptions{RefreshEvery: 5 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()

	ack := postEdge(t, srv, "insert", 5, 0)
	waitEpoch(t, h, ack.Epoch)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Updates *UpdaterStats `json:"updates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Updates == nil {
		t.Fatal("/stats has no updates block")
	}
	if doc.Updates.LastSeq != 1 || doc.Updates.AppliedSeq != 1 {
		t.Fatalf("updates block %+v", doc.Updates)
	}
	if doc.Updates.Repairs+doc.Updates.Rebuilds != 1 {
		t.Fatalf("update not counted as repair or rebuild: %+v", doc.Updates)
	}
}

// TestUpdaterRebuildCounter: an update with graph-spanning affected
// sets takes the rebuild fallback and the counter says so — the
// regression test for the DynamicIndex doc promise, at the serving
// layer where the soak asserts it.
func TestUpdaterRebuildCounter(t *testing.T) {
	// Two long chains (see internal/tol tests): bridging them forces
	// ANC×DES past 8·(n+m).
	const half = 60
	var edges []Edge
	for i := 0; i < half-1; i++ {
		edges = append(edges, Edge{From: VertexID(i), To: VertexID(i + 1)})
		edges = append(edges, Edge{From: VertexID(half + i), To: VertexID(half + i + 1)})
	}
	g := NewGraph(2*half, edges)
	h, u, _ := newUpdateServer(t, g, UpdaterOptions{RefreshEvery: 5 * time.Millisecond})

	_, epoch, err := u.Apply(true, half-1, half)
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, h, epoch)
	if s := u.Stats(); s.Rebuilds != 1 {
		t.Fatalf("bridge insert did not rebuild: %+v", s)
	}
	if !h.Index().Reachable(0, 2*half-1) {
		t.Fatal("bridge not visible after rebuild")
	}
	// A leaf update stays on the repair path.
	_, epoch, err = u.Apply(true, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, h, epoch)
	if s := u.Stats(); s.Rebuilds != 1 || s.Repairs != 1 {
		t.Fatalf("leaf insert stats: %+v", s)
	}
}

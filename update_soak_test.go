package reachlab

// The update/query soak: the headline test of the mutation path.
// Seeded writers mutate the graph through POST /edges while
// chaos-wrapped readers query /reach and /reach/batch; every answer
// is verified after the fact against a dynamic BFS oracle evaluated
// at the exact epoch the server stamped on the response
// (X-Reachlab-Epoch + Updater.EpochSeq pin the set of log records
// that epoch must and must not contain). Chaos kills reader requests
// mid-flight and stretches the refresher's pre-swap window; none of
// it may produce a single answer inconsistent with the answered
// epoch, and a simulated crash at the end may not lose one
// acknowledged write. Run under -race in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

// Soak topology: a random directed component on [0, soakRand) plus
// two disjoint chains of soakChain vertices each. Chain-local skip
// edges keep ANC×DES ≤ (soakChain/2)² — under the 8·(n+m) rebuild
// threshold — so a dedicated writer guarantees repair-path traffic,
// while toggling the bridge between the chains puts soakChain² well
// over it, guaranteeing rebuild-path traffic.
const (
	soakRand      = 200
	soakRandEdges = 400
	soakChain     = 150
	soakN         = soakRand + 2*soakChain
	soakChainA    = soakRand
	soakChainB    = soakRand + soakChain
)

func soakBaseEdges(rng *rand.Rand) []Edge {
	seen := make(map[[2]int]bool)
	var edges []Edge
	for len(edges) < soakRandEdges {
		u, v := rng.Intn(soakRand), rng.Intn(soakRand)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, Edge{From: VertexID(u), To: VertexID(v)})
	}
	for _, base := range []int{soakChainA, soakChainB} {
		for i := 0; i < soakChain-1; i++ {
			edges = append(edges, Edge{From: VertexID(base + i), To: VertexID(base + i + 1)})
		}
	}
	return edges
}

// soakOp is one acknowledged mutation: the oracle replays these in
// seq order, mirroring the maintainer's set semantics exactly.
type soakOp struct {
	seq, epoch uint64
	insert     bool
	u, v       VertexID
}

// soakSample is one successful read: what the server answered and at
// which epoch it claims the answer was exact. kind 0 is a point or
// batch /reach answer; 'c' is a /reach/count answer carrying count;
// 'p' is a /reach/path answer carrying the witness path, whose every
// hop must be an edge of that exact epoch's graph.
type soakSample struct {
	s, t      VertexID
	reachable bool
	epoch     uint64
	kind      byte
	count     int
	path      []VertexID
}

// soakOracle is the reference graph as an adjacency set, replaying
// acknowledged ops with the maintainer's semantics (duplicate insert
// and missing delete are no-ops by construction of a set).
type soakOracle []map[VertexID]bool

func newSoakOracle(edges []Edge) soakOracle {
	adj := make(soakOracle, soakN)
	for i := range adj {
		adj[i] = make(map[VertexID]bool)
	}
	for _, e := range edges {
		adj[e.From][e.To] = true
	}
	return adj
}

func (adj soakOracle) apply(op soakOp) {
	if op.insert {
		adj[op.u][op.v] = true
	} else {
		delete(adj[op.u], op.v)
	}
}

// reachAll BFSes from s and returns the reached-vertex bitmap.
func (adj soakOracle) reachAll(s VertexID) []bool {
	seen := make([]bool, soakN)
	seen[s] = true
	queue := []VertexID{s}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		next := make([]VertexID, 0, len(adj[w]))
		for x := range adj[w] {
			next = append(next, x)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, x := range next {
			if !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
	}
	return seen
}

func TestUpdateQuerySoak(t *testing.T) {
	chainOps, randOps, bridgeToggles, perReader := 120, 120, 30, 300
	if testing.Short() {
		chainOps, randOps, bridgeToggles, perReader = 40, 40, 10, 100
	}
	const readers = 4

	rng := rand.New(rand.NewSource(0x50AC))
	baseEdges := soakBaseEdges(rng)
	g := NewGraph(soakN, baseEdges)

	walPath := filepath.Join(t.TempDir(), "edges.wal")
	log, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(g, log, UpdaterOptions{
		RefreshEvery: 2 * time.Millisecond,
		RefreshBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos on the refresher: every few refreshes, stall between the
	// batch apply and the snapshot swap — the widest window in which
	// readers must keep getting old-epoch answers with the old-epoch
	// header. Set before Start (the hook field is read by the
	// refresher goroutine only).
	var hookTick atomic.Int64
	u.testHookMidRefresh = func() {
		if hookTick.Add(1)%4 == 0 {
			time.Sleep(3 * time.Millisecond)
		}
	}
	h := NewQueryHandlerObs(u.Snapshot(), nil)
	h.EnableUpdates(u)
	u.Start(h)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// --- writers: every ack recorded for the oracle ------------------
	var (
		opsMu sync.Mutex
		ops   []soakOp
	)
	post := func(insert bool, a, b VertexID) error {
		op := "delete"
		if insert {
			op = "insert"
		}
		body, _ := json.Marshal(edgeRequest{Op: op, U: int64(a), V: int64(b)})
		resp, err := http.Post(srv.URL+"/edges", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /edges %s(%d,%d): status %d", op, a, b, resp.StatusCode)
		}
		var ack edgeResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return err
		}
		opsMu.Lock()
		ops = append(ops, soakOp{seq: ack.Seq, epoch: ack.Epoch, insert: insert, u: a, v: b})
		opsMu.Unlock()
		return nil
	}

	var writers sync.WaitGroup
	// Writer 1: chain-local skip edges — guaranteed repair path.
	writers.Add(1)
	go func() {
		defer writers.Done()
		wrng := rand.New(rand.NewSource(101))
		for k := 0; k < chainOps; k += 2 {
			c := VertexID(soakChainA + wrng.Intn(soakChain-2))
			for _, insert := range []bool{true, false} {
				if err := post(insert, c, c+2); err != nil {
					t.Error(err)
					return
				}
			}
			if k%16 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Writer 2: arbitrary pairs in the random component (self-loops
	// and collisions with base edges included — the oracle mirrors
	// whatever the set semantics make of them).
	writers.Add(1)
	go func() {
		defer writers.Done()
		wrng := rand.New(rand.NewSource(202))
		for k := 0; k < randOps; k += 2 {
			a, b := VertexID(wrng.Intn(soakRand)), VertexID(wrng.Intn(soakRand))
			for _, insert := range []bool{true, false} {
				if err := post(insert, a, b); err != nil {
					t.Error(err)
					return
				}
			}
			if k%16 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Writer 3: toggles the chain bridge — guaranteed rebuild path.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for k := 0; k < bridgeToggles; k++ {
			if err := post(k%2 == 0, soakChainA+soakChain-1, soakChainB); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// --- readers: chaos-wrapped, recording (query, answer, epoch) ----
	var (
		samplesMu sync.Mutex
		samples   []soakSample
		killed    atomic.Int64
	)
	client := srv.Client()
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rrng := rand.New(rand.NewSource(int64(7001 + r)))
			local := make([]soakSample, 0, perReader)
			for q := 0; q < perReader; q++ {
				s := VertexID(rrng.Intn(soakN))
				tt := VertexID(rrng.Intn(soakN))
				switch roll := rrng.Intn(12); {
				case roll == 0:
					// Kill: a deadline far below the server's latency
					// floor cancels the request mid-flight.
					ctx, cancel := context.WithTimeout(context.Background(), 200*time.Microsecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
						fmt.Sprintf("%s/reach?s=%d&t=%d", srv.URL, s, tt), nil)
					if resp, err := client.Do(req); err != nil {
						killed.Add(1)
					} else {
						resp.Body.Close()
					}
					cancel()
					continue
				case roll == 1:
					time.Sleep(time.Duration(rrng.Intn(1500)) * time.Microsecond)
				case roll == 2:
					// Batch read: four pairs answered under one epoch.
					pairs := [][2]int64{{int64(s), int64(tt)}}
					for len(pairs) < 4 {
						pairs = append(pairs, [2]int64{int64(rrng.Intn(soakN)), int64(rrng.Intn(soakN))})
					}
					body, _ := json.Marshal(batchRequest{Pairs: pairs})
					resp, err := client.Post(srv.URL+"/reach/batch", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("reader %d: batch: %v", r, err)
						return
					}
					var br batchResponse
					epoch, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err != nil || len(br.Results) != len(pairs) {
						t.Errorf("reader %d: batch decode: %v (%d results)", r, err, len(br.Results))
						return
					}
					for i, p := range pairs {
						local = append(local, soakSample{s: VertexID(p[0]), t: VertexID(p[1]), reachable: br.Results[i], epoch: epoch})
					}
					continue
				case roll == 3:
					// Set-size read: count must equal the popcount of the
					// oracle's reach set at the answered epoch.
					resp, err := client.Get(fmt.Sprintf("%s/reach/count?s=%d", srv.URL, s))
					if err != nil {
						t.Errorf("reader %d: count: %v", r, err)
						return
					}
					var cr struct {
						Count int `json:"count"`
					}
					epoch, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
					err = json.NewDecoder(resp.Body).Decode(&cr)
					resp.Body.Close()
					if err != nil {
						t.Errorf("reader %d: count decode: %v", r, err)
						return
					}
					local = append(local, soakSample{s: s, epoch: epoch, kind: 'c', count: cr.Count})
					continue
				case roll == 4:
					// Witness-path read: every hop must be an edge of the
					// answered epoch's graph — the refresher attaches each
					// epoch's own graph at swap time, so a path walked
					// against a stale graph would carry phantom edges.
					resp, err := client.Get(fmt.Sprintf("%s/reach/path?s=%d&t=%d", srv.URL, s, tt))
					if err != nil {
						t.Errorf("reader %d: path: %v", r, err)
						return
					}
					var pr struct {
						Reachable bool       `json:"reachable"`
						Path      []VertexID `json:"path"`
					}
					epoch, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
					err = json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if err != nil {
						t.Errorf("reader %d: path decode: %v", r, err)
						return
					}
					local = append(local, soakSample{s: s, t: tt, reachable: pr.Reachable, epoch: epoch, kind: 'p', path: pr.Path})
					continue
				}
				resp, err := client.Get(fmt.Sprintf("%s/reach?s=%d&t=%d", srv.URL, s, tt))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				var got reachResponse
				epoch, _ := strconv.ParseUint(resp.Header.Get(EpochHeader), 10, 64)
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reader %d: decode: %v", r, err)
					return
				}
				local = append(local, soakSample{s: s, t: tt, reachable: got.Reachable, epoch: epoch})
			}
			samplesMu.Lock()
			samples = append(samples, local...)
			samplesMu.Unlock()
		}(r)
	}

	writers.Wait()
	rwg.Wait()
	if t.Failed() {
		return
	}

	// Drain the backlog so the final snapshot covers every ack.
	lastSeq := log.LastSeq()
	deadline := time.Now().Add(30 * time.Second)
	for u.AppliedSeq() < lastSeq {
		if time.Now().After(deadline) {
			t.Fatalf("backlog never drained: applied %d of %d", u.AppliedSeq(), lastSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// --- the ledger is contiguous and every promise materialized -----
	sort.Slice(ops, func(i, j int) bool { return ops[i].seq < ops[j].seq })
	if uint64(len(ops)) != lastSeq {
		t.Fatalf("recorded %d acks but log holds %d records", len(ops), lastSeq)
	}
	for i, op := range ops {
		if op.seq != uint64(i+1) {
			t.Fatalf("ack ledger has a gap at %d: seq %d", i, op.seq)
		}
		cut, ok := u.EpochSeq(op.epoch)
		if !ok {
			t.Fatalf("promised epoch %d for seq %d never materialized", op.epoch, op.seq)
		}
		if cut < op.seq {
			t.Fatalf("epoch %d cut at %d excludes promised seq %d", op.epoch, cut, op.seq)
		}
		if prev, ok := u.EpochSeq(op.epoch - 1); ok && prev >= op.seq {
			t.Fatalf("seq %d already present one epoch before its promise %d", op.seq, op.epoch)
		}
	}

	// --- verify every sample at its answered epoch -------------------
	byEpoch := make(map[uint64][]soakSample)
	for _, s := range samples {
		byEpoch[s.epoch] = append(byEpoch[s.epoch], s)
	}
	epochs := make([]uint64, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	if len(epochs) < 3 {
		t.Fatalf("soak observed only %d distinct epochs — no churn to verify against", len(epochs))
	}

	oracle := newSoakOracle(baseEdges)
	opIdx, mismatches := 0, 0
	for _, e := range epochs {
		cut, ok := u.EpochSeq(e)
		if !ok {
			t.Fatalf("server answered at epoch %d, unknown to the updater", e)
		}
		for opIdx < len(ops) && ops[opIdx].seq <= cut {
			oracle.apply(ops[opIdx])
			opIdx++
		}
		memo := make(map[VertexID][]bool)
		reachRow := func(v VertexID) []bool {
			row, ok := memo[v]
			if !ok {
				row = oracle.reachAll(v)
				memo[v] = row
			}
			return row
		}
		for _, s := range byEpoch[e] {
			switch s.kind {
			case 'c':
				want := 0
				for _, r := range reachRow(s.s) {
					if r {
						want++
					}
				}
				if s.count != want {
					mismatches++
					t.Errorf("epoch %d (cut seq %d): count(%d) answered %d, oracle says %d",
						e, cut, s.s, s.count, want)
				}
			case 'p':
				if reach := reachRow(s.s); reach[s.t] != s.reachable {
					mismatches++
					t.Errorf("epoch %d (cut seq %d): path(%d,%d) answered reachable=%v, oracle says %v",
						e, cut, s.s, s.t, s.reachable, reach[s.t])
					continue
				}
				if !s.reachable {
					continue
				}
				if len(s.path) == 0 || s.path[0] != s.s || s.path[len(s.path)-1] != s.t {
					mismatches++
					t.Errorf("epoch %d: path(%d,%d) endpoints wrong: %v", e, s.s, s.t, s.path)
					continue
				}
				for i := 0; i+1 < len(s.path); i++ {
					if !oracle[s.path[i]][s.path[i+1]] {
						mismatches++
						t.Errorf("epoch %d (cut seq %d): path(%d,%d) hop %d→%d is not an edge of that epoch's graph",
							e, cut, s.s, s.t, s.path[i], s.path[i+1])
					}
				}
			default:
				if reach := reachRow(s.s); reach[s.t] != s.reachable {
					mismatches++
					t.Errorf("epoch %d (cut seq %d): reach(%d,%d) answered %v, oracle says %v",
						e, cut, s.s, s.t, s.reachable, reach[s.t])
				}
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d samples contradict the oracle at their answered epoch", mismatches, len(samples))
	}

	// Both maintenance paths must have carried real traffic.
	stats := u.Stats()
	if stats.Repairs == 0 || stats.Rebuilds == 0 {
		t.Fatalf("soak did not exercise both maintenance paths: %+v", stats)
	}
	t.Logf("soak: %d ops, %d samples across %d epochs, %d chaos-killed reads, stats %+v",
		len(ops), len(samples), len(epochs), killed.Load(), stats)

	// --- crash and recover: zero lost acknowledged writes ------------
	for opIdx < len(ops) {
		oracle.apply(ops[opIdx])
		opIdx++
	}
	u.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log2, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	u2, err := NewUpdater(g, log2, UpdaterOptions{RefreshEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if got := u2.AppliedSeq(); got != lastSeq {
		t.Fatalf("recovery replayed to seq %d, want %d", got, lastSeq)
	}
	idx2 := u2.Snapshot()
	vrng := rand.New(rand.NewSource(31337))
	for k := 0; k < 500; k++ {
		s := VertexID(vrng.Intn(soakN))
		tt := VertexID(vrng.Intn(soakN))
		if want := oracle.reachAll(s)[tt]; idx2.Reachable(s, tt) != want {
			t.Fatalf("after recovery: reach(%d,%d) = %v, oracle says %v", s, tt, !want, want)
		}
	}
}
